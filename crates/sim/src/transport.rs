//! Bit-metered wire transport: serialise every full-information message through a
//! pluggable codec, count the bits per round and per directed edge, and optionally
//! squeeze the stream through a CONGEST-style per-edge bandwidth cap.
//!
//! The unmetered backends in [`crate::backend`] move [`ViewMessage`]s as `Arc`
//! handles — free to copy, and therefore silent about the quantity the paper's
//! model actually charges for: *bits on the wire*. This module adds the metered
//! execution mode: each message is encoded with a [`MessageCodec`], its exact
//! serialised length is accounted into [`WireStats`] (and emitted as
//! [`TraceEvent::RoundWire`] when a probe is attached), and the receiver decodes
//! the bit string — the delivered view is the *decoded* value, so the codec's
//! round-trip fidelity is exercised on every edge of every round, not assumed.
//!
//! Three codecs ship:
//!
//! * [`MessageCodec::Tree`] — the unfolded-tree format of
//!   [`anet_views::encoding`]: `Θ(Δ^r)` bits, the naive baseline.
//! * [`MessageCodec::Dag`] — the shared-DAG format of
//!   [`anet_views::dag_encoding`]: one table entry per *distinct* subview.
//! * [`MessageCodec::Delta`] — the incremental format of
//!   [`anet_views::delta_encoding`]: round `r`'s view encoded against the round
//!   `r − 1` view the receiver already holds from the previous round on the same
//!   edge, shipping only the table entries the base does not cover. Never more
//!   than one bit above [`MessageCodec::Dag`], and strictly below it wherever
//!   successive views share structure.
//!
//! [`Backend::Capped`] reuses the same loop with a finite per-edge budget: a
//! *logical* round whose largest encoded message is `L` bits occupies
//! `ceil(L / B)` *physical* rounds, each moving at most `B` bits per directed
//! edge. Partial chunks live in per-edge stream state (the private `Link`), never in the
//! inbox — a receiver sees a message only when its last chunk arrives, and the
//! receive phase of the logical round runs once every edge has drained. Outputs
//! and total message counts are therefore identical to the uncapped run; only the
//! measured round count (and the per-round bit profile) inflates as `B` shrinks.

use crate::backend::{record_phase, Backend};
use crate::full_info::{ViewCollector, ViewMessage};
use crate::model::NodeAlgorithm;
use crate::runner::{RunOutcome, RunReport};
use anet_graph::{Port, PortGraph};
use anet_trace::{Phase, TraceEvent, TraceSink};
use anet_views::dag_encoding::{decode_view_dag, encode_view_dag};
use anet_views::delta_encoding::{decode_view_delta, encode_view_delta};
use anet_views::encoding::{decode_view_interned, encode_view_interned};
use anet_views::{BitString, View};
use std::time::Instant;

/// The wire format of a metered run: how a [`ViewMessage`] becomes bits.
///
/// Every codec ships the far-port tag as a varint followed by the view body; they
/// differ only in the body format. The default is [`MessageCodec::Dag`] — the
/// format whose size is also what the advice strings of the `CPPE` solvers are
/// measured in, so metered wire totals and advice totals are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MessageCodec {
    /// Unfolded-tree body ([`anet_views::encoding::encode_view_interned`]).
    Tree,
    /// Shared-DAG body ([`anet_views::dag_encoding::encode_view_dag`]).
    #[default]
    Dag,
    /// Incremental body against the previous round's view on the same edge
    /// ([`anet_views::delta_encoding::encode_view_delta`]).
    Delta,
}

impl MessageCodec {
    /// All codecs, in baseline-to-sharpest order.
    pub const ALL: [MessageCodec; 3] = [MessageCodec::Tree, MessageCodec::Dag, MessageCodec::Delta];

    /// Stable lowercase label used in scenario names, sweep artifacts and tables.
    pub fn label(&self) -> &'static str {
        match self {
            MessageCodec::Tree => "tree",
            MessageCodec::Dag => "dag",
            MessageCodec::Delta => "delta",
        }
    }

    /// Parse a label produced by [`MessageCodec::label`].
    pub fn from_label(label: &str) -> Option<MessageCodec> {
        MessageCodec::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl std::fmt::Display for MessageCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bit accounting of one metered run, exact by construction: every entry is the
/// length of a bit string that was actually encoded (and decoded) by the run.
///
/// Invariant, asserted by the equivalence test layer: the per-round and per-edge
/// views are two partitions of the same total, so
/// `per_round_bits.sum() == per_edge_bits.sum() == total_bits()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// The codec every message was serialised with.
    pub codec: MessageCodec,
    /// The per-edge cap of a [`Backend::Capped`] run; `None` when unmetered by
    /// bandwidth (every message crosses in the round it was sent).
    pub bits_per_edge_cap: Option<u64>,
    /// `per_round_bits[r - 1]` is the number of bits that crossed any wire in
    /// *physical* round `r` (on a capped run, partial chunks count in the round
    /// they were transferred).
    pub per_round_bits: Vec<u64>,
    /// `per_edge_bits[offsets[v] + p]` is the total bits sent across directed
    /// edge `(v, p)` over the whole run, indexed like
    /// [`PortGraph::port_offsets`].
    pub per_edge_bits: Vec<u64>,
}

impl WireStats {
    /// Total bits on the wire over the whole run.
    pub fn total_bits(&self) -> u64 {
        self.per_round_bits.iter().sum()
    }

    /// The same total, accumulated edge-wise; equal to [`WireStats::total_bits`]
    /// on every run (the reconciliation the transport tests pin down).
    pub fn per_edge_total(&self) -> u64 {
        self.per_edge_bits.iter().sum()
    }

    /// The heaviest directed edge's cumulative bits — the wire analogue of a
    /// congestion bound.
    pub fn max_edge_bits(&self) -> u64 {
        self.per_edge_bits.iter().copied().max().unwrap_or(0)
    }
}

/// Per-directed-edge stream state: the current logical round's encoded message
/// and how much of it is still in flight. The buffers are allocated once per run
/// and refilled in place every logical round ([`BitString::clear`]), so the
/// metered loop performs no per-round allocation beyond what the codecs
/// themselves need to build bodies.
struct Link {
    /// The full wire string of this logical round's message: varint far-port tag
    /// followed by the codec body.
    wire: BitString,
    /// Encoded length in bits; `0` marks an empty slot (no message this round).
    total: u64,
    /// Bits not yet across. Delivery happens exactly when this reaches zero.
    remaining: u64,
    /// Whether the completed message has been decoded into the inbox (partial
    /// streams are represented here, never as inbox entries).
    delivered: bool,
}

impl Link {
    fn new() -> Link {
        Link {
            wire: BitString::new(),
            total: 0,
            remaining: 0,
            delivered: true,
        }
    }
}

/// Encode one message into its link: varint port tag, then the codec body.
fn encode_link(codec: MessageCodec, port: Port, view: &View, base: Option<&View>, link: &mut Link) {
    link.wire.clear();
    link.wire.push_varint(port as u64);
    let height = view.height();
    let body = match codec {
        MessageCodec::Tree => encode_view_interned(view, height),
        MessageCodec::Dag => encode_view_dag(view, height),
        MessageCodec::Delta => encode_view_delta(view, height, base),
    };
    for bit in body.iter() {
        link.wire.push_bit(bit);
    }
    link.total = link.wire.len() as u64;
    link.remaining = link.total;
    link.delivered = false;
}

/// Decode a fully-arrived link back into a message. The body bits are copied into
/// `scratch` (reused across slots) because the codec decoders consume a whole
/// [`BitString`]. A self-encoded message always decodes; the `expect`s here are
/// internal-consistency assertions, not input validation.
fn decode_link(
    codec: MessageCodec,
    link: &Link,
    base: Option<&View>,
    scratch: &mut BitString,
) -> ViewMessage {
    let mut r = link.wire.reader();
    let port = r
        .read_varint()
        .expect("metered transport: port tag of a self-encoded message decodes");
    scratch.clear();
    while let Some(bit) = r.read_bit() {
        scratch.push_bit(bit);
    }
    let view = match codec {
        MessageCodec::Tree => decode_view_interned(scratch).map(|(v, _)| v),
        MessageCodec::Dag => decode_view_dag(scratch).map(|(v, _)| v),
        MessageCodec::Delta => decode_view_delta(scratch, base).map(|(v, _)| v),
    }
    .expect("metered transport: a self-encoded message always decodes");
    (port as Port, view)
}

/// The send/encode half of a metered logical round: drain every outbox slot into
/// its link's wire buffer and report the largest encoded message (which fixes how
/// many physical rounds a capped run needs for this logical round).
// anet-lint: hot-path
fn encode_round(
    codec: MessageCodec,
    out: &mut [Option<ViewMessage>],
    bases: &[Option<View>],
    links: &mut [Link],
) -> u64 {
    let mut max_bits = 0u64;
    for ((slot, link), base) in out.iter_mut().zip(links.iter_mut()).zip(bases.iter()) {
        match slot.take() {
            Some((port, view)) => {
                encode_link(codec, port, &view, base.as_ref(), link);
                if link.total > max_bits {
                    max_bits = link.total;
                }
            }
            None => {
                link.total = 0;
                link.remaining = 0;
                link.delivered = true;
            }
        }
    }
    max_bits
}

/// One physical round of wire transfer: every edge with bits in flight moves at
/// most `cap` of them, and the moved bits are accounted per edge. Pure integer
/// work — the route loop of the metered transport.
// anet-lint: hot-path
fn transfer_round(cap: u64, links: &mut [Link], per_edge_bits: &mut [u64]) -> u64 {
    let mut bits_now = 0u64;
    for (link, edge_bits) in links.iter_mut().zip(per_edge_bits.iter_mut()) {
        if link.remaining > 0 {
            let chunk = link.remaining.min(cap);
            link.remaining -= chunk;
            *edge_bits += chunk;
            bits_now += chunk;
        }
    }
    bits_now
}

/// Run the full-information algorithm for `rounds` *logical* rounds with every
/// message serialised through `codec`, returning the collected views together
/// with exact bit accounting. With `bits_per_edge: Some(B)` the run is
/// bandwidth-capped: each physical round moves at most `B` bits per directed
/// edge (a zero cap is normalised to 1), large messages stream across several
/// physical rounds, and `report.rounds` counts *physical* rounds. With `None`
/// every message crosses in the round it was sent and physical == logical.
///
/// The loop is sequential: metering serialises every message anyway, and the
/// collected views are backend-independent (the equivalence tests pin outputs
/// against every unmetered backend), so there is nothing for worker threads to
/// overlap that the codec work would not immediately re-serialise.
pub fn run_metered(
    graph: &PortGraph,
    rounds: usize,
    codec: MessageCodec,
    bits_per_edge: Option<u64>,
    sink: &dyn TraceSink,
) -> (RunOutcome<View>, WireStats) {
    let cap = bits_per_edge.map(|b| b.max(1));
    let offsets = graph.port_offsets();
    let route = graph.flat_route_table_with(&offsets);
    let slots = route.len();
    let mut nodes: Vec<ViewCollector> = graph
        .nodes()
        .map(|v| ViewCollector::new(graph.degree(v)))
        .collect();
    // All per-edge state is allocated once and reused every round, exactly like
    // the batching backend's arenas: out/inbox slots, stream links, and the
    // receiver-side delta bases (the last view decoded on each directed edge).
    let mut out: Vec<Option<ViewMessage>> = vec![None; slots];
    let mut inbox: Vec<Option<ViewMessage>> = vec![None; slots];
    let mut links: Vec<Link> = (0..slots).map(|_| Link::new()).collect();
    let mut bases: Vec<Option<View>> = vec![None; slots];
    let mut per_edge_bits = vec![0u64; slots];
    let mut per_round_bits: Vec<u64> = Vec::new();
    let mut scratch = BitString::new();
    let mut messages_delivered = 0usize;
    let mut physical = 0usize;
    let tracing = sink.enabled();
    let message_bytes = std::mem::size_of::<ViewMessage>() as u64;
    if tracing {
        // `rounds` here is the *logical* plan; on a capped run the physical count
        // is only known at RunEnd.
        sink.record(TraceEvent::RunStart {
            trace_id: 0,
            nodes: graph.num_nodes() as u64,
            rounds: rounds as u64,
        });
    }

    for round in 1..=rounds {
        // First physical round of the block: send + encode.
        physical += 1;
        if tracing {
            sink.record(TraceEvent::RoundStart {
                trace_id: 0,
                round: physical as u64,
            });
        }
        let phase_start = tracing.then(Instant::now);
        for (v, node) in nodes.iter_mut().enumerate() {
            node.send_into(round, &mut out[offsets[v]..offsets[v + 1]]);
        }
        let max_bits = encode_round(codec, &mut out, &bases, &mut links);
        record_phase(sink, physical, Phase::Send, phase_start);

        // How many physical rounds this logical round occupies.
        let (chunk, span) = match cap {
            None => (u64::MAX, 1),
            Some(b) => (b, max_bits.div_ceil(b).max(1)),
        };
        for step in 1..=span {
            if step > 1 {
                physical += 1;
                if tracing {
                    sink.record(TraceEvent::RoundStart {
                        trace_id: 0,
                        round: physical as u64,
                    });
                }
            }
            let phase_start = tracing.then(Instant::now);
            let bits_now = transfer_round(chunk, &mut links, &mut per_edge_bits);
            // Deliver every stream whose last chunk just arrived: decode against
            // the base the receiver holds, then that decoded view *becomes* the
            // base for the next logical round on this edge.
            let mut completed = 0u64;
            for i in 0..slots {
                let link = &links[i];
                if link.total > 0 && link.remaining == 0 && !link.delivered {
                    let (port, view) = decode_link(codec, link, bases[i].as_ref(), &mut scratch);
                    inbox[route[i]] = Some((port, view.clone()));
                    bases[i] = Some(view);
                    links[i].delivered = true;
                    completed += 1;
                }
            }
            messages_delivered += completed as usize;
            record_phase(sink, physical, Phase::Route, phase_start);
            // The receive phase runs once per logical round, after every edge has
            // drained — nodes never observe a partially-streamed neighbourhood.
            if step == span {
                let phase_start = tracing.then(Instant::now);
                for (v, node) in nodes.iter_mut().enumerate() {
                    node.receive(round, &mut inbox[offsets[v]..offsets[v + 1]]);
                }
                record_phase(sink, physical, Phase::Receive, phase_start);
            }
            per_round_bits.push(bits_now);
            if tracing {
                sink.record(TraceEvent::RoundEnd {
                    trace_id: 0,
                    round: physical as u64,
                    messages: completed,
                    payload_bytes: completed * message_bytes,
                });
                if bits_now > 0 {
                    sink.record(TraceEvent::RoundWire {
                        trace_id: 0,
                        round: physical as u64,
                        bits: bits_now,
                    });
                }
            }
        }
    }

    if tracing {
        sink.record(TraceEvent::RunEnd {
            trace_id: 0,
            rounds: physical as u64,
            messages: messages_delivered as u64,
        });
    }
    (
        RunOutcome {
            outputs: nodes.iter().map(|n| n.output()).collect(),
            report: RunReport {
                rounds: physical,
                messages_delivered,
            },
        },
        WireStats {
            codec,
            bits_per_edge_cap: cap,
            per_round_bits,
            per_edge_bits,
        },
    )
}

/// [`crate::run_full_information_traced`] in metered mode: collect `B^rounds(v)`
/// with every message serialised through `codec`, apply `decide`, and return the
/// per-node outputs together with the run report *and* the wire accounting.
///
/// The `backend` selects bandwidth, not scheduling: [`Backend::Capped`] streams
/// at its per-edge cap (inflating `report.rounds` to the physical count), every
/// other backend runs unrestricted — outputs are identical either way.
pub fn run_full_information_metered<O, D>(
    graph: &PortGraph,
    rounds: usize,
    backend: Backend,
    codec: MessageCodec,
    sink: &dyn TraceSink,
    decide: D,
) -> (Vec<O>, RunReport, WireStats)
where
    O: Clone + Send,
    D: Fn(&View) -> O,
{
    let cap = match backend {
        Backend::Capped { bits_per_edge } => Some(bits_per_edge.max(1)),
        _ => None,
    };
    let (outcome, stats) = run_metered(graph, rounds, codec, cap, sink);
    let decisions = outcome.outputs.iter().map(decide).collect();
    (decisions, outcome.report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_info::run_full_information_on;
    use anet_graph::generators;
    use anet_trace::{NoopSink, Recorder, RoundProfile};

    #[test]
    fn codec_labels_round_trip() {
        for codec in MessageCodec::ALL {
            assert_eq!(MessageCodec::from_label(codec.label()), Some(codec));
            assert_eq!(format!("{codec}"), codec.label());
        }
        assert_eq!(MessageCodec::from_label("huffman"), None);
        assert_eq!(MessageCodec::default(), MessageCodec::Dag);
    }

    #[test]
    fn metered_outputs_match_unmetered_for_every_codec() {
        let g = generators::random_connected(18, 4, 6, 11).unwrap();
        let rounds = 3;
        let (seq, report) = run_full_information_on(&g, rounds, Backend::Sequential, |v| v.clone());
        for codec in MessageCodec::ALL {
            let (outcome, stats) = run_metered(&g, rounds, codec, None, &NoopSink);
            assert_eq!(outcome.outputs, seq, "{codec}");
            assert_eq!(outcome.report, report, "{codec}");
            // Uncapped: one physical round per logical round, every round on the wire.
            assert_eq!(stats.per_round_bits.len(), rounds, "{codec}");
            assert!(stats.per_round_bits.iter().all(|&b| b > 0), "{codec}");
            assert_eq!(stats.total_bits(), stats.per_edge_total(), "{codec}");
        }
    }

    #[test]
    fn capped_runs_inflate_rounds_but_preserve_outputs_and_messages() {
        let g = generators::symmetric_ring(6).unwrap();
        let rounds = 3;
        let (seq, uncapped) =
            run_full_information_on(&g, rounds, Backend::Sequential, |v| v.clone());
        let (outcome, stats) = run_metered(&g, rounds, MessageCodec::Dag, Some(16), &NoopSink);
        assert_eq!(outcome.outputs, seq);
        assert_eq!(
            outcome.report.messages_delivered,
            uncapped.messages_delivered
        );
        assert!(
            outcome.report.rounds > rounds,
            "16-bit cap must stretch {} logical rounds, got {}",
            rounds,
            outcome.report.rounds
        );
        assert_eq!(stats.per_round_bits.len(), outcome.report.rounds);
        // No physical round moved more than B bits on any edge: with 12 directed
        // edges the round total is bounded by 12 × 16.
        assert!(stats.per_round_bits.iter().all(|&b| b <= 16 * 12));
        assert_eq!(stats.total_bits(), stats.per_edge_total());
    }

    #[test]
    fn shrinking_the_cap_only_stretches_the_same_bit_total() {
        let g = generators::random_connected(12, 4, 4, 3).unwrap();
        let rounds = 2;
        let (_, baseline) = run_metered(&g, rounds, MessageCodec::Dag, None, &NoopSink);
        let mut previous_rounds = rounds;
        for cap in [512u64, 64, 8, 1] {
            let (outcome, stats) = run_metered(&g, rounds, MessageCodec::Dag, Some(cap), &NoopSink);
            assert_eq!(stats.total_bits(), baseline.total_bits(), "cap {cap}");
            assert_eq!(stats.per_edge_bits, baseline.per_edge_bits, "cap {cap}");
            assert!(
                outcome.report.rounds >= previous_rounds,
                "cap {cap}: rounds must not shrink as bandwidth shrinks"
            );
            previous_rounds = outcome.report.rounds;
        }
    }

    #[test]
    fn generous_cap_agrees_with_uncapped_exactly() {
        let g = generators::random_connected(14, 4, 5, 7).unwrap();
        let (free, free_stats) = run_metered(&g, 3, MessageCodec::Delta, None, &NoopSink);
        let (capped, capped_stats) =
            run_metered(&g, 3, MessageCodec::Delta, Some(1 << 20), &NoopSink);
        assert_eq!(capped.outputs, free.outputs);
        assert_eq!(capped.report, free.report);
        assert_eq!(capped_stats.per_round_bits, free_stats.per_round_bits);
        assert_eq!(capped_stats.per_edge_bits, free_stats.per_edge_bits);
    }

    #[test]
    fn delta_strictly_beats_dag_on_a_standard_scenario() {
        // Acceptance criterion of the transport layer: on the symmetric ring —
        // a standard workload family — successive rounds share almost all view
        // structure, so the delta codec's wire total is strictly below the DAG
        // codec's (and the DAG total is at most the tree total).
        let g = generators::symmetric_ring(9).unwrap();
        let rounds = 5;
        let (_, tree) = run_metered(&g, rounds, MessageCodec::Tree, None, &NoopSink);
        let (_, dag) = run_metered(&g, rounds, MessageCodec::Dag, None, &NoopSink);
        let (_, delta) = run_metered(&g, rounds, MessageCodec::Delta, None, &NoopSink);
        assert!(
            delta.total_bits() < dag.total_bits(),
            "delta {} must beat dag {}",
            delta.total_bits(),
            dag.total_bits()
        );
        assert!(dag.total_bits() <= tree.total_bits());
    }

    #[test]
    fn wire_events_reconcile_with_stats_and_profile_covers_physical_rounds() {
        let g = generators::symmetric_ring(5).unwrap();
        let recorder = Recorder::new();
        let (outcome, stats) = run_metered(&g, 3, MessageCodec::Dag, Some(8), &recorder);
        let profile = RoundProfile::from_events(&recorder.drain());
        assert_eq!(profile.len(), outcome.report.rounds);
        assert_eq!(profile.total_wire_bits(), stats.total_bits());
        for (stat, &bits) in profile.rounds().iter().zip(stats.per_round_bits.iter()) {
            assert_eq!(stat.wire_bits, bits, "round {}", stat.round);
        }
    }

    #[test]
    fn single_node_and_single_edge_graphs_survive_every_cap() {
        // n = 1: no edges, nothing on the wire, one physical round per logical.
        let lonely = anet_graph::GraphBuilder::with_nodes(1).build().unwrap();
        let (outcome, stats) = run_metered(&lonely, 2, MessageCodec::Delta, Some(1), &NoopSink);
        assert_eq!(outcome.report.rounds, 2);
        assert_eq!(outcome.report.messages_delivered, 0);
        assert_eq!(stats.total_bits(), 0);
        // A single edge under a one-bit cap: every message streams bit by bit,
        // and the collected views still match the combinatorial definition.
        let mut b = anet_graph::GraphBuilder::with_nodes(2);
        b.add_edge(0, 0, 1, 0).unwrap();
        let pair = b.build().unwrap();
        let (outcome, stats) = run_metered(&pair, 2, MessageCodec::Dag, Some(1), &NoopSink);
        assert_eq!(outcome.outputs[0], View::build(&pair, 0, 2));
        assert_eq!(outcome.outputs[1], View::build(&pair, 1, 2));
        // Both directed edges stream one bit per physical round in parallel.
        assert_eq!(2 * outcome.report.rounds as u64, stats.total_bits());
        assert_eq!(stats.per_round_bits.iter().max(), Some(&2u64)); // 2 edges × 1 bit
    }

    #[test]
    fn run_full_information_metered_dispatches_on_the_backend() {
        let g = generators::symmetric_ring(5).unwrap();
        let (degrees, report, stats) = run_full_information_metered(
            &g,
            2,
            Backend::capped(4),
            MessageCodec::Dag,
            &NoopSink,
            |v| v.degree(),
        );
        assert_eq!(degrees, vec![2; 5]);
        assert!(report.rounds > 2);
        assert_eq!(stats.bits_per_edge_cap, Some(4));
        let (_, free_report, free_stats) = run_full_information_metered(
            &g,
            2,
            Backend::Sequential,
            MessageCodec::Dag,
            &NoopSink,
            |v| v.degree(),
        );
        assert_eq!(free_report.rounds, 2);
        assert_eq!(free_stats.bits_per_edge_cap, None);
        assert_eq!(free_stats.total_bits(), stats.total_bits());
    }
}
