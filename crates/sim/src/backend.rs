//! Execution backends: one round engine, several execution strategies.
//!
//! Historically the crate exposed two separate entry points, `run` (sequential) and
//! `run_parallel` (multi-threaded), with the routing phase copy-pasted between them.
//! [`Backend`] unifies them: a backend is a *strategy for executing the send, route
//! and receive phases* of the synchronous round loop. The [`Simulator`] trait
//! abstracts over backends so higher layers (the `ElectionEngine` facade in
//! `anet-core`) can be written against "something that can execute a distributed
//! algorithm" without caring how rounds are scheduled.
//!
//! Four strategies are available:
//!
//! * [`Backend::Sequential`] — the single-threaded reference implementation: fresh
//!   per-node outbox vectors every round, routed by the shared (crate-internal) `route_messages`
//!   helper.
//! * [`Backend::Parallel`] — send/receive split across a fixed number of scoped
//!   threads in uniform node-count chunks; routing stays sequential.
//! * [`Backend::Batching`] — the allocation-free hot path: all outboxes and inboxes
//!   live in two flat per-run arenas indexed by the graph's port-offset table
//!   ([`anet_graph::PortGraph::port_offsets`]), and the routing phase is one linear
//!   pass over a precomputed flat route table
//!   ([`anet_graph::PortGraph::flat_route_table`]). Nodes write their messages
//!   directly into their arena slice via [`NodeAlgorithm::send_into`], so the
//!   send → route → receive cycle performs zero per-round allocation (for algorithms
//!   overriding `send_into`; the default falls back to [`NodeAlgorithm::send`] and
//!   copies). Messages are *moved* from the outbox arena to the inbox arena, not
//!   cloned.
//! * [`Backend::AdaptiveParallel`] — chunk-size-adaptive parallelism: the worker
//!   count is derived from the graph size, its degree sum and the machine's available
//!   parallelism (tiny graphs run sequentially rather than spawning threads), and the
//!   per-phase chunks are balanced by *degree sum* rather than node count, so
//!   irregular-degree graphs don't leave straggler workers.
//!
//! Message accounting is backend-independent by construction: every backend delivers
//! exactly the messages the port map prescribes, in a state-independent order, so all
//! backends report bit-identical [`RunReport`]s and outputs. The equivalence is
//! enforced by property tests over [`Backend::smoke_set`].

use crate::model::{AlgorithmFactory, NodeAlgorithm};
use crate::runner::{RunOutcome, RunReport};
use anet_graph::PortGraph;
use anet_trace::{NoopSink, Phase, TraceEvent, TraceSink};
use std::ops::Range;
use std::time::Instant;

/// How the synchronous round loop executes the per-node send/receive phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Single-threaded reference execution.
    #[default]
    Sequential,
    /// Send and receive phases split across `threads` OS threads (scoped threads from
    /// the standard library) in uniform node-count chunks; the routing phase stays
    /// sequential, as it is cheap pointer shuffling. Semantically identical to
    /// [`Backend::Sequential`]. Prefer constructing via [`Backend::parallel`], which
    /// normalizes the thread count; a raw `threads: 0` still executes with one thread
    /// and reports itself as `par1`.
    Parallel {
        /// Number of worker threads (clamped to at least 1 everywhere it is used).
        threads: usize,
    },
    /// Message-batching execution: per-run flat outbox/inbox arenas indexed by the
    /// graph's port-offset table, routed by one linear pass over a precomputed route
    /// table. Zero per-round allocation; the fastest backend on routing-heavy
    /// workloads (n ≳ 10⁵).
    Batching,
    /// Chunk-size-adaptive parallel execution: worker count chosen from the graph
    /// size, degree sum and [`std::thread::available_parallelism`]; chunks balanced
    /// by degree sum per phase. Falls back to sequential execution on graphs too
    /// small to amortize thread spawning.
    AdaptiveParallel,
    /// CONGEST-style capped-bandwidth execution: a round moves at most
    /// `bits_per_edge` serialised bits across each directed edge, so a view too
    /// large for one round streams across several and the *measured* round count
    /// inflates as bandwidth shrinks (outputs and message totals stay identical —
    /// only the rounds axis moves). The cap is only meaningful for messages the
    /// metered transport can serialise: the full-information entry points
    /// ([`crate::run_full_information_traced`] and the metered variants) honour
    /// it via [`crate::transport`]; for arbitrary message types [`Backend::run`]
    /// cannot measure bits and degenerates to a sequential uncapped run.
    /// Construct via [`Backend::capped`], which normalises a zero cap to 1.
    Capped {
        /// Bits each directed edge may carry per round (≥ 1 wherever it is used).
        bits_per_edge: u64,
    },
}

/// Minimum number of port slots of work per adaptive worker: below this, spawning a
/// thread costs more than the phase it would execute.
const ADAPTIVE_MIN_PORTS_PER_WORKER: usize = 4096;

impl Backend {
    /// A parallel backend with a normalized thread count: `threads` is clamped to at
    /// least 1, so the constructed value's [`label`](Backend::label) always agrees
    /// with how it executes.
    pub fn parallel(threads: usize) -> Backend {
        Backend::Parallel {
            threads: threads.max(1),
        }
    }

    /// A capped-bandwidth backend with a normalized cap: `bits_per_edge` is clamped
    /// to at least 1 (a zero-bit edge could never deliver anything), so the
    /// constructed value's [`label`](Backend::label) always agrees with how it
    /// executes.
    pub fn capped(bits_per_edge: u64) -> Backend {
        Backend::Capped {
            bits_per_edge: bits_per_edge.max(1),
        }
    }

    /// The number of worker threads [`Backend::Parallel`] actually executes with
    /// (`threads` clamped to at least 1, then capped by the calling thread's
    /// [`crate::thread_budget`]); 1 for [`Backend::Sequential`] and
    /// [`Backend::Batching`]. For [`Backend::AdaptiveParallel`] the count depends on
    /// the graph, so this returns the machine ceiling
    /// ([`std::thread::available_parallelism`]), again capped by the budget.
    pub fn effective_threads(&self) -> usize {
        match self {
            Backend::Sequential | Backend::Batching | Backend::Capped { .. } => 1,
            Backend::Parallel { threads } => (*threads).max(1).min(crate::thread_budget()),
            Backend::AdaptiveParallel => available_parallelism().min(crate::thread_budget()),
        }
    }

    /// A short human-readable label (`seq`, `par4`, `batch`, `adaptive`, `cap64`)
    /// for reports and tables. The label reflects the *configured* backend:
    /// `Parallel { threads: 0 }` runs with one thread and therefore labels itself
    /// `par1` (and `Capped { bits_per_edge: 0 }` runs with a one-bit cap and labels
    /// itself `cap1`), but a [`crate::with_thread_budget`] cap does **not** change
    /// the label — reports keyed by label stay comparable whether or not the run
    /// happened under a budget.
    pub fn label(&self) -> String {
        match self {
            Backend::Sequential => "seq".to_string(),
            Backend::Parallel { threads } => format!("par{}", (*threads).max(1)),
            Backend::Batching => "batch".to_string(),
            Backend::AdaptiveParallel => "adaptive".to_string(),
            Backend::Capped { bits_per_edge } => format!("cap{}", (*bits_per_edge).max(1)),
        }
    }

    /// A representative set of backends, used by equivalence tests and sweeps.
    pub fn smoke_set() -> Vec<Backend> {
        vec![
            Backend::Sequential,
            Backend::parallel(1),
            Backend::parallel(2),
            Backend::parallel(4),
            Backend::parallel(7),
            Backend::Batching,
            Backend::AdaptiveParallel,
        ]
    }

    /// Run `factory`'s algorithm on `graph` for `rounds` synchronous rounds.
    ///
    /// This is the *only* round loop in the crate: every public entry point (the
    /// full-information collector, the `ElectionEngine` facade) funnels through here.
    /// Equivalent to [`Backend::run_traced`] with a [`NoopSink`]; the disabled probe
    /// costs one branch per phase and reads no clock.
    pub fn run<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        self.run_traced(graph, factory, rounds, &NoopSink)
    }

    /// [`Backend::run`] with a trace probe: the round loop emits
    /// [`TraceEvent`]s into `sink` — run and round start/end markers, per-phase
    /// wall-clock nanoseconds (send vs route vs receive), and per-round
    /// delivered-message counts with shallow payload bytes. Events carry
    /// `trace_id: 0`; wrap the sink in [`anet_trace::Tagged`] to stamp run ids.
    ///
    /// Tracing never changes what is computed: outputs and [`RunReport`]s are
    /// bit-identical with and without a recording sink, and per-round message
    /// counts are backend-independent (enforced by the equivalence suite).
    pub fn run_traced<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
        sink: &dyn TraceSink,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        match self {
            Backend::Batching => run_batched(graph, factory, rounds, sink),
            Backend::Sequential => run_chunked(graph, factory, rounds, Vec::new(), sink),
            Backend::Parallel { threads } => {
                let threads = (*threads).max(1).min(crate::thread_budget());
                run_chunked(
                    graph,
                    factory,
                    rounds,
                    uniform_chunks(graph.num_nodes(), threads),
                    sink,
                )
            }
            Backend::AdaptiveParallel => {
                let offsets = graph.port_offsets();
                let threads = adaptive_threads(graph.num_nodes(), offsets[graph.num_nodes()])
                    .min(crate::thread_budget());
                run_chunked(
                    graph,
                    factory,
                    rounds,
                    degree_balanced_chunks(&offsets, threads),
                    sink,
                )
            }
            // An arbitrary message type has no wire encoding, so there is nothing
            // to cap: the generic entry point runs sequentially and uncapped. The
            // full-information entry points (`run_full_information_traced` and the
            // metered variants in `crate::transport`) recognise `Capped` and run
            // the streaming metered loop instead — that is where round inflation
            // happens.
            Backend::Capped { .. } => run_chunked(graph, factory, rounds, Vec::new(), sink),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Anything that can execute a distributed algorithm on a graph for a number of
/// rounds. Implemented by [`Backend`]; higher layers accept `&impl Simulator` when
/// they only need "some way to run rounds".
pub trait Simulator {
    /// Execute `factory`'s algorithm on `graph` for `rounds` synchronous rounds.
    fn execute<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory;

    /// [`execute`](Simulator::execute) with a trace probe. The default
    /// implementation ignores the sink and delegates (a simulator without probes
    /// still runs correctly — it just emits nothing); [`Backend`] overrides it
    /// with the instrumented round loop.
    fn execute_traced<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
        sink: &dyn TraceSink,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        let _ = sink;
        self.execute(graph, factory, rounds)
    }
}

impl Simulator for Backend {
    fn execute<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        self.run(graph, factory, rounds)
    }

    fn execute_traced<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
        sink: &dyn TraceSink,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        self.run_traced(graph, factory, rounds, sink)
    }
}

/// Hardware parallelism ceiling (1 when the platform cannot report it).
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Worker count for [`Backend::AdaptiveParallel`]: the machine ceiling, scaled down
/// so every worker has at least [`ADAPTIVE_MIN_PORTS_PER_WORKER`] port slots of phase
/// work (counting a node as at least one slot), and never more workers than nodes.
/// Tiny graphs yield 1, i.e. a fully sequential run with no thread spawned.
fn adaptive_threads(n: usize, total_ports: usize) -> usize {
    let work = total_ports.max(n);
    available_parallelism()
        .min(work.div_ceil(ADAPTIVE_MIN_PORTS_PER_WORKER))
        .clamp(1, n.max(1))
}

/// Uniform node-count chunks, exactly the historical `Parallel` chunking: `threads`
/// ranges of `ceil(n / threads)` nodes (the last possibly shorter). A single chunk is
/// returned as the empty plan, which the round loop runs inline.
fn uniform_chunks(n: usize, threads: usize) -> Vec<Range<usize>> {
    if threads <= 1 || n == 0 {
        return Vec::new();
    }
    let chunk_size = n.div_ceil(threads).max(1);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk_size).min(n);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Chunks balanced by degree sum: consecutive node ranges each covering roughly
/// `total_ports / threads` port slots, computed from the port-offset table. On
/// irregular-degree graphs this keeps per-worker phase cost even where node-count
/// chunking would not. Returns the empty plan (run inline) for a single chunk.
fn degree_balanced_chunks(offsets: &[usize], threads: usize) -> Vec<Range<usize>> {
    let n = offsets.len() - 1;
    if threads <= 1 || n == 0 {
        return Vec::new();
    }
    let total = offsets[n];
    let target = total.div_ceil(threads).max(1);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut next_cut = target;
    for v in 0..n {
        if offsets[v + 1] >= next_cut && v + 1 > start {
            ranges.push(start..v + 1);
            start = v + 1;
            next_cut = offsets[v + 1] + target;
        }
    }
    if start < n {
        ranges.push(start..n);
    }
    ranges
}

/// Record the elapsed time of one phase when the probe armed it (`start` is `Some`
/// exactly when the sink is enabled — the disabled path reads no clock at all).
// anet-lint: hot-path
pub(crate) fn record_phase(
    sink: &dyn TraceSink,
    round: usize,
    phase: Phase,
    start: Option<Instant>,
) {
    if let Some(start) = start {
        sink.record(TraceEvent::PhaseTime {
            trace_id: 0,
            round: round as u64,
            phase,
            ns: start.elapsed().as_nanos() as u64,
        });
    }
}

/// The chunked round loop shared by [`Backend::Sequential`], [`Backend::Parallel`]
/// and [`Backend::AdaptiveParallel`]: an empty `chunks` plan runs every phase inline;
/// otherwise send/receive are split over one scoped worker thread per range. Routing
/// is always the sequential shared [`route_messages`] pass.
fn run_chunked<F>(
    graph: &PortGraph,
    factory: &F,
    rounds: usize,
    chunks: Vec<Range<usize>>,
    sink: &dyn TraceSink,
) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
where
    F: AlgorithmFactory,
{
    let mut nodes: Vec<F::Algo> = graph
        .nodes()
        .map(|v| factory.create(graph.degree(v)))
        .collect();
    let mut messages_delivered = 0usize;
    // Inbox buffers are allocated once, up front, and reused every round: the
    // routing phase clears and refills the slots in place, so the routing hot path
    // performs no per-round allocation (this matters at n ≳ 10⁵, where one
    // `Vec` per node per round used to dominate).
    let mut inboxes: Vec<Vec<Option<<F::Algo as NodeAlgorithm>::Message>>> =
        graph.nodes().map(|v| vec![None; graph.degree(v)]).collect();
    // The probe: one hoisted flag; when disabled, the loop below performs no clock
    // reads and constructs no events. All events are emitted by this coordinating
    // thread, so a recording sink sees them in round order.
    let tracing = sink.enabled();
    let message_bytes = std::mem::size_of::<<F::Algo as NodeAlgorithm>::Message>() as u64;
    if tracing {
        sink.record(TraceEvent::RunStart {
            trace_id: 0,
            nodes: graph.num_nodes() as u64,
            rounds: rounds as u64,
        });
    }

    for round in 1..=rounds {
        if tracing {
            sink.record(TraceEvent::RoundStart {
                trace_id: 0,
                round: round as u64,
            });
        }
        // Send phase.
        let phase_start = tracing.then(Instant::now);
        let outboxes = if chunks.is_empty() {
            nodes.iter_mut().map(|node| node.send(round)).collect()
        } else {
            parallel_send(&mut nodes, round, &chunks)
        };
        record_phase(sink, round, Phase::Send, phase_start);
        // Routing phase (shared by every chunked backend; see the module docs).
        let delivered_before = messages_delivered;
        let phase_start = tracing.then(Instant::now);
        route_messages(graph, &outboxes, &mut inboxes, &mut messages_delivered);
        record_phase(sink, round, Phase::Route, phase_start);
        // Receive phase.
        let phase_start = tracing.then(Instant::now);
        if chunks.is_empty() {
            for (node, inbox) in nodes.iter_mut().zip(inboxes.iter_mut()) {
                node.receive(round, inbox);
            }
        } else {
            parallel_receive(&mut nodes, &mut inboxes, round, &chunks);
        }
        record_phase(sink, round, Phase::Receive, phase_start);
        if tracing {
            let delivered = (messages_delivered - delivered_before) as u64;
            sink.record(TraceEvent::RoundEnd {
                trace_id: 0,
                round: round as u64,
                messages: delivered,
                payload_bytes: delivered * message_bytes,
            });
        }
    }

    if tracing {
        sink.record(TraceEvent::RunEnd {
            trace_id: 0,
            rounds: rounds as u64,
            messages: messages_delivered as u64,
        });
    }
    RunOutcome {
        outputs: nodes.iter().map(|n| n.output()).collect(),
        report: RunReport {
            rounds,
            messages_delivered,
        },
    }
}

/// The [`Backend::Batching`] round loop: flat outbox/inbox arenas indexed by the
/// port-offset table, routed in one linear pass over the flat route table. The only
/// allocations are the two arenas and the tables, once per run; every round after
/// that reuses them in place (provided the algorithm overrides
/// [`NodeAlgorithm::send_into`]; the default writes through a temporary from
/// [`NodeAlgorithm::send`]).
fn run_batched<F>(
    graph: &PortGraph,
    factory: &F,
    rounds: usize,
    sink: &dyn TraceSink,
) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
where
    F: AlgorithmFactory,
{
    let offsets = graph.port_offsets();
    let route = graph.flat_route_table_with(&offsets);
    let total = route.len();
    let mut nodes: Vec<F::Algo> = graph
        .nodes()
        .map(|v| factory.create(graph.degree(v)))
        .collect();
    let mut out_arena: Vec<Option<<F::Algo as NodeAlgorithm>::Message>> = vec![None; total];
    let mut in_arena: Vec<Option<<F::Algo as NodeAlgorithm>::Message>> = vec![None; total];
    let mut messages_delivered = 0usize;
    // Probe (see `run_chunked`): one hoisted flag, no clock reads when disabled.
    let tracing = sink.enabled();
    let message_bytes = std::mem::size_of::<<F::Algo as NodeAlgorithm>::Message>() as u64;
    if tracing {
        sink.record(TraceEvent::RunStart {
            trace_id: 0,
            nodes: graph.num_nodes() as u64,
            rounds: rounds as u64,
        });
    }

    let mut arenas = BatchArenas {
        offsets: &offsets,
        route: &route,
        out: &mut out_arena,
        inbox: &mut in_arena,
    };
    for round in 1..=rounds {
        batched_round(
            round,
            &mut nodes,
            &mut arenas,
            sink,
            message_bytes,
            &mut messages_delivered,
        );
    }

    if tracing {
        sink.record(TraceEvent::RunEnd {
            trace_id: 0,
            rounds: rounds as u64,
            messages: messages_delivered as u64,
        });
    }
    RunOutcome {
        outputs: nodes.iter().map(|n| n.output()).collect(),
        report: RunReport {
            rounds,
            messages_delivered,
        },
    }
}

/// The flat per-run buffers of [`run_batched`], bundled so the round fn stays
/// readable: the port-offset table, the flat route table, and the two message
/// arenas the whole run reuses in place.
struct BatchArenas<'a, M> {
    offsets: &'a [usize],
    route: &'a [usize],
    out: &'a mut [Option<M>],
    inbox: &'a mut [Option<M>],
}

/// One round of the batching backend: send into the outbox arena, route it into
/// the inbox arena in a single linear pass, receive in place. This is the
/// paper-benchmark hot path — the lint enforces that it never allocates (the
/// arenas in `BatchArenas` are the only buffers it may touch).
// anet-lint: hot-path
fn batched_round<A: NodeAlgorithm>(
    round: usize,
    nodes: &mut [A],
    arenas: &mut BatchArenas<'_, A::Message>,
    sink: &dyn TraceSink,
    message_bytes: u64,
    messages_delivered: &mut usize,
) {
    let tracing = sink.enabled();
    if tracing {
        sink.record(TraceEvent::RoundStart {
            trace_id: 0,
            round: round as u64,
        });
    }
    // Send phase: every node writes its arena slice directly.
    let phase_start = tracing.then(Instant::now);
    for (node, window) in nodes.iter_mut().zip(arenas.offsets.windows(2)) {
        node.send_into(round, &mut arenas.out[window[0]..window[1]]);
    }
    record_phase(sink, round, Phase::Send, phase_start);
    // Routing phase: clear the inbox arena (receivers may have left residue and
    // silent ports must read `None`), then move each message to the far end of
    // its edge — a cache-friendly linear pass over one buffer.
    let delivered_before = *messages_delivered;
    let phase_start = tracing.then(Instant::now);
    for slot in arenas.inbox.iter_mut() {
        *slot = None;
    }
    for (slot, &dest) in arenas.out.iter_mut().zip(arenas.route.iter()) {
        if let Some(message) = slot.take() {
            arenas.inbox[dest] = Some(message);
            *messages_delivered += 1;
        }
    }
    record_phase(sink, round, Phase::Route, phase_start);
    // Receive phase: every node reads its arena slice in place.
    let phase_start = tracing.then(Instant::now);
    for (node, window) in nodes.iter_mut().zip(arenas.offsets.windows(2)) {
        node.receive(round, &mut arenas.inbox[window[0]..window[1]]);
    }
    record_phase(sink, round, Phase::Receive, phase_start);
    if tracing {
        let delivered = (*messages_delivered - delivered_before) as u64;
        sink.record(TraceEvent::RoundEnd {
            trace_id: 0,
            round: round as u64,
            messages: delivered,
            payload_bytes: delivered * message_bytes,
        });
    }
}

/// The routing phase of the chunked backends: `inbox[u][q] = outbox[v][p]` whenever
/// `(u, q)` is across port `p` of `v`. Increments `messages_delivered` once per
/// delivered message, and fills caller-owned inbox buffers in place instead of
/// allocating fresh ones, so the round loop reuses one set of buffers for the whole
/// run. ([`Backend::Batching`] performs the same routing as a linear pass over its
/// flat arenas instead.)
pub(crate) fn route_messages<M: Clone>(
    graph: &PortGraph,
    outboxes: &[Vec<Option<M>>],
    inboxes: &mut [Vec<Option<M>>],
    messages_delivered: &mut usize,
) {
    // Clear every slot first: receivers may have left arbitrary residue (taken or
    // untaken messages from the previous round), and a port that receives nothing
    // this round must read `None`.
    for inbox in inboxes.iter_mut() {
        for slot in inbox.iter_mut() {
            *slot = None;
        }
    }
    for v in graph.nodes() {
        for (p, msg) in outboxes[v as usize].iter().enumerate() {
            if let Some(msg) = msg {
                if let Some((u, q)) = graph.neighbor(v, p as u32) {
                    inboxes[u as usize][q as usize] = Some(msg.clone());
                    *messages_delivered += 1;
                }
            }
        }
    }
}

/// Split a mutable slice at the given contiguous ranges (which must cover
/// `0..slice.len()` in order), yielding one sub-slice per range.
fn split_by_ranges<'a, T>(mut slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut parts = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for range in ranges {
        let (head, tail) = slice.split_at_mut(range.end - consumed);
        consumed = range.end;
        parts.push(head);
        slice = tail;
    }
    debug_assert!(slice.is_empty(), "chunk plan must cover every node");
    parts
}

/// Send phase split over scoped worker threads (one per chunk of the plan); outboxes
/// are reassembled in node order.
fn parallel_send<A: NodeAlgorithm>(
    nodes: &mut [A],
    round: usize,
    chunks: &[Range<usize>],
) -> Vec<Vec<Option<A::Message>>> {
    let mut outboxes = Vec::with_capacity(nodes.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = split_by_ranges(nodes, chunks)
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|node| node.send(round))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            outboxes.extend(h.join().expect("send worker panicked"));
        }
    });
    outboxes
}

/// Receive phase split over scoped worker threads, chunked identically to the send
/// phase so each node's inbox buffer travels with its algorithm instance.
fn parallel_receive<A: NodeAlgorithm>(
    nodes: &mut [A],
    inboxes: &mut [Vec<Option<A::Message>>],
    round: usize,
    chunks: &[Range<usize>],
) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = split_by_ranges(nodes, chunks)
            .into_iter()
            .zip(split_by_ranges(inboxes, chunks))
            .map(|(node_chunk, inbox_chunk)| {
                scope.spawn(move || {
                    for (node, inbox) in node_chunk.iter_mut().zip(inbox_chunk.iter_mut()) {
                        node.receive(round, inbox);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("receive worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_constructor_normalizes_zero_threads() {
        assert_eq!(Backend::parallel(0), Backend::Parallel { threads: 1 });
        assert_eq!(Backend::parallel(3), Backend::Parallel { threads: 3 });
    }

    #[test]
    fn labels_agree_with_execution_for_zero_threads() {
        // Regression: `Parallel { threads: 0 }` is clamped to one thread inside the
        // round loop, so its label must say `par1`, not `par0`.
        let raw = Backend::Parallel { threads: 0 };
        assert_eq!(raw.label(), "par1");
        assert_eq!(raw.effective_threads(), 1);
        assert_eq!(raw.label(), Backend::parallel(0).label());
        assert_eq!(Backend::Parallel { threads: 4 }.label(), "par4");
    }

    #[test]
    fn backend_labels_are_distinct_and_stable() {
        assert_eq!(Backend::Sequential.label(), "seq");
        assert_eq!(Backend::Batching.label(), "batch");
        assert_eq!(Backend::AdaptiveParallel.label(), "adaptive");
        let labels: Vec<String> = Backend::smoke_set().iter().map(|b| b.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn smoke_set_includes_the_arena_backends() {
        let set = Backend::smoke_set();
        assert!(set.contains(&Backend::Batching));
        assert!(set.contains(&Backend::AdaptiveParallel));
        assert!(set.contains(&Backend::Sequential));
    }

    #[test]
    fn uniform_chunks_cover_the_node_range() {
        assert!(uniform_chunks(10, 1).is_empty());
        assert!(uniform_chunks(0, 4).is_empty());
        let chunks = uniform_chunks(10, 3);
        assert_eq!(chunks, vec![0..4, 4..8, 8..10]);
        let chunks = uniform_chunks(3, 7);
        assert_eq!(chunks, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn degree_balanced_chunks_split_by_port_count() {
        // A "heavy head": one node with 6 ports, then six nodes of 1 port. Node-count
        // chunking would put half the ports in the first worker; degree-balanced
        // chunking cuts after the heavy node.
        let offsets = vec![0, 6, 7, 8, 9, 10, 11, 12];
        let chunks = degree_balanced_chunks(&offsets, 2);
        assert_eq!(chunks.first(), Some(&(0..1)));
        let covered: usize = chunks.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 7);
        assert!(chunks.windows(2).all(|w| w[0].end == w[1].start));
        assert!(degree_balanced_chunks(&offsets, 1).is_empty());
    }

    #[test]
    fn thread_budget_caps_effective_threads_but_not_labels() {
        crate::with_thread_budget(2, || {
            assert_eq!(Backend::parallel(8).effective_threads(), 2);
            assert_eq!(
                Backend::AdaptiveParallel.effective_threads(),
                2.min(available_parallelism())
            );
            // Sequential backends are unaffected (already below the cap).
            assert_eq!(Backend::Sequential.effective_threads(), 1);
            assert_eq!(Backend::Batching.effective_threads(), 1);
            // Labels stay budget-independent so report keys remain comparable.
            assert_eq!(Backend::parallel(8).label(), "par8");
        });
        assert_eq!(Backend::parallel(8).effective_threads(), 8);
    }

    #[test]
    fn budgeted_parallel_run_matches_sequential_output() {
        // Oversubscription regression: a par8 backend under a budget of 1 must
        // run (with one worker) and still produce the reference outputs.
        let g = anet_graph::generators::symmetric_ring(12).unwrap();
        let factory = crate::full_info::ViewCollectorFactory;
        let reference = Backend::Sequential.run(&g, &factory, 3);
        let budgeted = crate::with_thread_budget(1, || Backend::parallel(8).run(&g, &factory, 3));
        assert_eq!(reference.outputs, budgeted.outputs);
        assert_eq!(reference.report, budgeted.report);
    }

    #[test]
    fn traced_run_is_output_identical_and_sums_to_the_report() {
        use anet_trace::{Recorder, RoundProfile};
        let g = anet_graph::generators::random_connected(24, 4, 8, 5).unwrap();
        let factory = crate::full_info::ViewCollectorFactory;
        let rounds = 3;
        let plain = Backend::Sequential.run(&g, &factory, rounds);
        let mut reference_rounds: Option<Vec<u64>> = None;
        for backend in Backend::smoke_set() {
            let rec = Recorder::new();
            let traced = backend.run_traced(&g, &factory, rounds, &rec);
            assert_eq!(traced.outputs, plain.outputs, "{backend}");
            assert_eq!(traced.report, plain.report, "{backend}");
            let events = rec.drain();
            // Run markers frame the stream.
            assert!(
                matches!(events.first(), Some(TraceEvent::RunStart { nodes, .. }) if *nodes == g.num_nodes() as u64),
                "{backend}"
            );
            assert!(
                matches!(events.last(), Some(TraceEvent::RunEnd { messages, .. }) if *messages == plain.report.messages_delivered as u64),
                "{backend}"
            );
            let profile = RoundProfile::from_events(&events);
            assert_eq!(profile.len(), rounds, "{backend}");
            // Per-round counts sum exactly to the report total…
            assert_eq!(
                profile.total_messages(),
                plain.report.messages_delivered as u64,
                "{backend}"
            );
            // …and are identical across every backend (messages are routed by the
            // port map, not by scheduling).
            let per_round: Vec<u64> = profile.rounds().iter().map(|r| r.messages).collect();
            match &reference_rounds {
                None => reference_rounds = Some(per_round),
                Some(reference) => assert_eq!(&per_round, reference, "{backend}"),
            }
            // Payload accounting is shallow: delivered × message size.
            let message_bytes = std::mem::size_of::<crate::full_info::ViewMessage>() as u64;
            assert_eq!(
                profile.total_payload_bytes(),
                plain.report.messages_delivered as u64 * message_bytes,
                "{backend}"
            );
        }
    }

    #[test]
    fn disabled_probe_emits_nothing() {
        let g = anet_graph::generators::symmetric_ring(8).unwrap();
        let factory = crate::full_info::ViewCollectorFactory;
        // `run` is `run_traced` with a `NoopSink`; a recording sink wrapped to
        // report `enabled() == false` must stay empty even if passed explicitly.
        struct DisabledRecorder(anet_trace::Recorder);
        impl TraceSink for DisabledRecorder {
            fn record(&self, event: TraceEvent) {
                self.0.record(event);
            }
            fn enabled(&self) -> bool {
                false
            }
        }
        let sink = DisabledRecorder(anet_trace::Recorder::new());
        let traced = Backend::Batching.run_traced(&g, &factory, 2, &sink);
        let plain = Backend::Batching.run(&g, &factory, 2);
        assert_eq!(traced.outputs, plain.outputs);
        assert!(sink.0.is_empty(), "disabled probe must not emit");
    }

    #[test]
    fn adaptive_threads_stay_sequential_on_tiny_graphs() {
        assert_eq!(adaptive_threads(1, 0), 1);
        assert_eq!(adaptive_threads(10, 30), 1);
        // Huge work unlocks up to the machine ceiling, but never more than n.
        let big = adaptive_threads(1 << 20, 1 << 22);
        assert!(big >= 1 && big <= available_parallelism());
        assert_eq!(
            adaptive_threads(2, usize::MAX / 2),
            2.min(available_parallelism()).max(1)
        );
    }
}
