//! Execution backends: one round engine, several execution strategies.
//!
//! Historically the crate exposed two separate entry points, `run` (sequential) and
//! `run_parallel` (multi-threaded), with the routing phase copy-pasted between them.
//! [`Backend`] unifies them: a backend is a *strategy for executing the send and
//! receive phases* of the synchronous round loop, while the round structure itself —
//! send, route, receive — is implemented exactly once ([`Backend::run`]). The
//! [`Simulator`] trait abstracts over backends so higher layers (the `ElectionEngine`
//! facade in `anet-core`) can be written against "something that can execute a
//! distributed algorithm" without caring how rounds are scheduled.
//!
//! Message accounting is backend-independent by construction: the routing phase is the
//! single shared [`route_messages`] helper, so every backend delivers the same
//! messages in the same order and reports identical [`RunReport`]s.

use crate::model::{AlgorithmFactory, NodeAlgorithm};
use crate::runner::{RunOutcome, RunReport};
use anet_graph::PortGraph;

/// How the synchronous round loop executes the per-node send/receive phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Single-threaded reference execution.
    #[default]
    Sequential,
    /// Send and receive phases split across `threads` OS threads (scoped threads from
    /// the standard library); the routing phase stays sequential, as it is cheap
    /// pointer shuffling. Semantically identical to [`Backend::Sequential`].
    Parallel {
        /// Number of worker threads (clamped to at least 1).
        threads: usize,
    },
}

impl Backend {
    /// A short human-readable label (`seq`, `par4`, …) for reports and tables.
    pub fn label(&self) -> String {
        match self {
            Backend::Sequential => "seq".to_string(),
            Backend::Parallel { threads } => format!("par{threads}"),
        }
    }

    /// A representative set of backends, used by equivalence tests and sweeps.
    pub fn smoke_set() -> Vec<Backend> {
        vec![
            Backend::Sequential,
            Backend::Parallel { threads: 1 },
            Backend::Parallel { threads: 2 },
            Backend::Parallel { threads: 4 },
            Backend::Parallel { threads: 7 },
        ]
    }

    /// Run `factory`'s algorithm on `graph` for `rounds` synchronous rounds.
    ///
    /// This is the *only* round loop in the crate: every public entry point
    /// (the deprecated `run` / `run_parallel` free functions, the full-information
    /// collector, the `ElectionEngine` facade) funnels through here.
    pub fn run<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        let n = graph.num_nodes();
        let threads = match self {
            Backend::Sequential => 1,
            Backend::Parallel { threads } => (*threads).max(1),
        };
        let chunk_size = n.div_ceil(threads.max(1)).max(1);
        let mut nodes: Vec<F::Algo> = graph
            .nodes()
            .map(|v| factory.create(graph.degree(v)))
            .collect();
        let mut messages_delivered = 0usize;
        // Inbox buffers are allocated once, up front, and reused every round: the
        // routing phase clears and refills the slots in place, so the routing hot path
        // performs no per-round allocation (this matters at n ≳ 10⁵, where one
        // `Vec` per node per round used to dominate).
        let mut inboxes: Vec<Vec<Option<<F::Algo as NodeAlgorithm>::Message>>> =
            graph.nodes().map(|v| vec![None; graph.degree(v)]).collect();

        for round in 1..=rounds {
            // Send phase.
            let outboxes = if threads == 1 {
                nodes.iter_mut().map(|node| node.send(round)).collect()
            } else {
                parallel_send(&mut nodes, round, chunk_size)
            };
            // Routing phase (shared by every backend; see the module docs).
            route_messages(graph, &outboxes, &mut inboxes, &mut messages_delivered);
            // Receive phase.
            if threads == 1 {
                for (node, inbox) in nodes.iter_mut().zip(inboxes.iter_mut()) {
                    node.receive(round, inbox);
                }
            } else {
                parallel_receive(&mut nodes, &mut inboxes, round, chunk_size);
            }
        }

        RunOutcome {
            outputs: nodes.iter().map(|n| n.output()).collect(),
            report: RunReport {
                rounds,
                messages_delivered,
            },
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Anything that can execute a distributed algorithm on a graph for a number of
/// rounds. Implemented by [`Backend`]; higher layers accept `&impl Simulator` when
/// they only need "some way to run rounds".
pub trait Simulator {
    /// Execute `factory`'s algorithm on `graph` for `rounds` synchronous rounds.
    fn execute<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory;
}

impl Simulator for Backend {
    fn execute<F>(
        &self,
        graph: &PortGraph,
        factory: &F,
        rounds: usize,
    ) -> RunOutcome<<F::Algo as NodeAlgorithm>::Output>
    where
        F: AlgorithmFactory,
    {
        self.run(graph, factory, rounds)
    }
}

/// The routing phase, shared by every backend: `inbox[u][q] = outbox[v][p]` whenever
/// `(u, q)` is across port `p` of `v`. Increments `messages_delivered` once per
/// delivered message. Exactly the loop that used to be copy-pasted between `run` and
/// `run_parallel` — except that it now fills caller-owned inbox buffers in place
/// instead of allocating fresh ones, so the round loop reuses one set of buffers for
/// the whole run.
pub(crate) fn route_messages<M: Clone>(
    graph: &PortGraph,
    outboxes: &[Vec<Option<M>>],
    inboxes: &mut [Vec<Option<M>>],
    messages_delivered: &mut usize,
) {
    // Clear every slot first: receivers may have left arbitrary residue (taken or
    // untaken messages from the previous round), and a port that receives nothing
    // this round must read `None`.
    for inbox in inboxes.iter_mut() {
        for slot in inbox.iter_mut() {
            *slot = None;
        }
    }
    for v in graph.nodes() {
        for (p, msg) in outboxes[v as usize].iter().enumerate() {
            if let Some(msg) = msg {
                if let Some((u, q)) = graph.neighbor(v, p as u32) {
                    inboxes[u as usize][q as usize] = Some(msg.clone());
                    *messages_delivered += 1;
                }
            }
        }
    }
}

/// Send phase split over scoped worker threads; outboxes are reassembled in node order.
fn parallel_send<A: NodeAlgorithm>(
    nodes: &mut [A],
    round: usize,
    chunk_size: usize,
) -> Vec<Vec<Option<A::Message>>> {
    let mut outboxes = Vec::with_capacity(nodes.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks_mut(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|node| node.send(round))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            outboxes.extend(h.join().expect("send worker panicked"));
        }
    });
    outboxes
}

/// Receive phase split over scoped worker threads, chunked identically to the send
/// phase so each node's inbox buffer travels with its algorithm instance.
fn parallel_receive<A: NodeAlgorithm>(
    nodes: &mut [A],
    inboxes: &mut [Vec<Option<A::Message>>],
    round: usize,
    chunk_size: usize,
) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks_mut(chunk_size)
            .zip(inboxes.chunks_mut(chunk_size))
            .map(|(node_chunk, inbox_chunk)| {
                scope.spawn(move || {
                    for (node, inbox) in node_chunk.iter_mut().zip(inbox_chunk.iter_mut()) {
                        node.receive(round, inbox);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("receive worker panicked");
        }
    });
}
