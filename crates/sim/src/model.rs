//! Traits implemented by distributed algorithms running in the LOCAL model.

/// A per-node deterministic algorithm.
///
/// A node instance is created by an [`AlgorithmFactory`] knowing only the node's degree
/// (and whatever global information — e.g. oracle advice or a map of the graph — the
/// factory itself was constructed with, which models information given identically to
/// every node). In each round the engine calls [`NodeAlgorithm::send`], routes the
/// messages along the edges, and then calls [`NodeAlgorithm::receive`] with the
/// messages that arrived, indexed by the *local* port they arrived on. After the
/// allotted number of rounds, [`NodeAlgorithm::output`] is read.
pub trait NodeAlgorithm: Send {
    /// Message type exchanged on edges. The LOCAL model does not restrict its size.
    type Message: Clone + Send;
    /// The node's final output.
    type Output: Clone + Send;

    /// Produce the messages to send in round `round` (1-based): one optional message
    /// per local port `0..degree`. Returning a shorter vector means "nothing on the
    /// remaining ports".
    fn send(&mut self, round: usize) -> Vec<Option<Self::Message>>;

    /// Write the round-`round` messages directly into `outbox` (one slot per local
    /// port, engine-owned and reused across rounds) instead of returning a fresh
    /// vector. The arena-based backends ([`Backend::Batching`] and friends) call this
    /// in their send phase; the default implementation delegates to
    /// [`NodeAlgorithm::send`] and copies, so existing algorithms keep working —
    /// override it to make the send phase allocation-free. Entries beyond
    /// `outbox.len()` (i.e. beyond the node's degree) are dropped, exactly as the
    /// routing phase drops them for [`NodeAlgorithm::send`].
    ///
    /// [`Backend::Batching`]: crate::Backend::Batching
    fn send_into(&mut self, round: usize, outbox: &mut [Option<Self::Message>]) {
        let mut messages = self.send(round);
        let filled = messages.len().min(outbox.len());
        for (slot, message) in outbox.iter_mut().zip(messages.drain(..filled)) {
            *slot = message;
        }
        for slot in outbox[filled..].iter_mut() {
            *slot = None;
        }
    }

    /// Consume the messages delivered in round `round`; `inbox[p]` is the message that
    /// arrived through local port `p`, if any. The slice is a buffer owned by the
    /// round engine and reused across rounds (so large runs do not reallocate one
    /// `Vec` per node per round); take messages out with [`Option::take`] — whatever
    /// is left in the slots is discarded when the engine refills them next round.
    fn receive(&mut self, round: usize, inbox: &mut [Option<Self::Message>]);

    /// The node's output after the allotted rounds have elapsed.
    fn output(&self) -> Self::Output;
}

/// Creates per-node algorithm instances.
///
/// The factory is what the "algorithm designer" ships: it may capture advice, a map of
/// the graph, or nothing. It is handed only the degree of the node it instantiates —
/// nodes are anonymous, so no identifier is available.
pub trait AlgorithmFactory: Sync {
    /// The per-node algorithm this factory creates.
    type Algo: NodeAlgorithm;

    /// Instantiate the algorithm for a node of degree `degree`.
    fn create(&self, degree: usize) -> Self::Algo;
}

/// Blanket implementation so closures `Fn(usize) -> A` can be used as factories.
impl<A, F> AlgorithmFactory for F
where
    A: NodeAlgorithm,
    F: Fn(usize) -> A + Sync,
{
    type Algo = A;

    fn create(&self, degree: usize) -> A {
        self(degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial algorithm: counts rounds, never talks.
    struct Silent {
        rounds_seen: usize,
    }

    impl NodeAlgorithm for Silent {
        type Message = ();
        type Output = usize;

        fn send(&mut self, _round: usize) -> Vec<Option<()>> {
            Vec::new()
        }

        fn receive(&mut self, _round: usize, _inbox: &mut [Option<()>]) {
            self.rounds_seen += 1;
        }

        fn output(&self) -> usize {
            self.rounds_seen
        }
    }

    #[test]
    fn closures_are_factories() {
        let factory = |_degree: usize| Silent { rounds_seen: 0 };
        let mut node = factory.create(3);
        assert!(node.send(1).is_empty());
        node.receive(1, &mut [None, None, None]);
        assert_eq!(node.output(), 1);
    }
}
