//! Scoped thread budgets: capping how many OS threads a backend may use.
//!
//! A single election run sizes its parallelism against the whole machine
//! ([`std::thread::available_parallelism`]) — correct when it is the only thing
//! running, pathological inside the multi-tenant election service, where `n`
//! workers each running an `AdaptiveParallel` backend would spawn
//! `n × available_parallelism` threads and thrash the scheduler.
//!
//! [`with_thread_budget`] bounds the *effective* thread count of every backend
//! executed inside its closure, on the calling thread: the service wraps each
//! scheduled run in a budget of roughly `available_parallelism / workers`, the
//! `ElectionEngine` facade exposes it as `ElectionBuilder::thread_budget`, and the
//! backends consult [`thread_budget`] wherever they decide a worker count. The
//! budget is a thread-local, not a global: concurrent service workers each carry
//! their own, and runs outside any budget are unaffected (`usize::MAX`).
//!
//! Budgets nest by taking the minimum, and the previous budget is restored when
//! the closure returns — including on panic (RAII guard), so a poisoned worker
//! cannot leak a stale cap into unrelated work. Budgets never change *what* a
//! backend computes (all backends are output-equivalent by construction), only how
//! many threads it schedules.

use std::cell::Cell;

thread_local! {
    /// The calling thread's current cap on backend worker threads.
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Restores the previous budget on drop (normal return or unwind).
struct BudgetGuard {
    previous: usize,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        THREAD_BUDGET.with(|b| b.set(self.previous));
    }
}

/// Run `f` with backend thread counts on this thread capped at `budget` (clamped
/// to at least 1; nested budgets combine by minimum). The cap applies to every
/// [`crate::Backend`] executed inside `f` on this thread — including threads the
/// backends themselves spawn being *counted* against the cap, since the worker
/// plans are computed on this thread before any spawn.
pub fn with_thread_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    let previous = THREAD_BUDGET.with(|b| b.get());
    let _guard = BudgetGuard { previous };
    THREAD_BUDGET.with(|b| b.set(previous.min(budget.max(1))));
    f()
}

/// The calling thread's current thread budget (`usize::MAX` outside any
/// [`with_thread_budget`] scope).
pub fn thread_budget() -> usize {
    THREAD_BUDGET.with(|b| b.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults_to_unbounded() {
        assert_eq!(thread_budget(), usize::MAX);
    }

    #[test]
    fn budget_applies_restores_and_nests_by_minimum() {
        with_thread_budget(4, || {
            assert_eq!(thread_budget(), 4);
            with_thread_budget(2, || assert_eq!(thread_budget(), 2));
            // A looser nested budget cannot widen the cap.
            with_thread_budget(16, || assert_eq!(thread_budget(), 4));
            assert_eq!(thread_budget(), 4);
        });
        assert_eq!(thread_budget(), usize::MAX);
        // Zero clamps to one (a budget cannot forbid running).
        with_thread_budget(0, || assert_eq!(thread_budget(), 1));
    }

    #[test]
    fn budget_is_restored_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_thread_budget(2, || panic!("worker died"));
        });
        assert!(result.is_err());
        assert_eq!(thread_budget(), usize::MAX);
    }

    #[test]
    fn budget_is_per_thread() {
        with_thread_budget(2, || {
            std::thread::scope(|s| {
                let other = s.spawn(thread_budget).join().unwrap();
                assert_eq!(other, usize::MAX, "budgets do not leak across threads");
            });
        });
    }
}
