//! The full-information algorithm: collecting `B^r(v)` through message passing.
//!
//! "The information that `v` gets about the graph in `r` rounds is precisely the
//! truncated view `V^r(v)` together with degrees of leaves of this tree" (Section 1).
//! The algorithm below realises that ceiling constructively: in round `r`, every node
//! sends to each neighbour its augmented view of depth `r − 1` (which it has assembled
//! from the previous rounds) together with the local port it is sending through; on
//! reception, the node assembles its augmented view of depth `r`.
//!
//! Views travel as structurally shared [`View`] handles: the subtree a node sends in
//! round `r` *is* (by the definition of views) the `B^{r-1}` it assembled in round
//! `r − 1`, so a send is an `Arc` reference-count bump per port instead of a deep
//! clone of up to `Δ^{r-1}` tree nodes, and a receive grafts the `degree + children`
//! root node in `O(deg)` ([`View::from_parts`]). One round therefore costs `O(m)`
//! handle operations in total, independent of view size — the seed's owned
//! [`ViewTree`](anet_views::ViewTree) representation cost `Θ(m · Δ^r)` node copies.
//!
//! Tests check that the assembled view is *identical* to the direct combinatorial
//! construction (`View::build` / `ViewTree::build`), i.e. the simulator and the
//! definition agree. This is the bridge that lets the election algorithms in
//! `anet-core` be defined as functions of `B^r(v)` (the paper's formulation) while
//! still being executable as genuine message-passing algorithms.

use crate::backend::Backend;
use crate::model::{AlgorithmFactory, NodeAlgorithm};
use crate::runner::RunOutcome;
use anet_graph::{Port, PortGraph};
use anet_views::View;

/// Message of the full-information algorithm: a shared handle to the sender's current
/// view, tagged with the port the sender used (so the receiver learns the far-end port
/// number of the connecting edge, which is part of the view encoding). Cloning the
/// message is an `Arc` bump, so the parallel and batching backends move it around for
/// free.
pub type ViewMessage = (Port, View);

/// Per-node state of the full-information algorithm.
#[derive(Debug, Clone)]
pub struct ViewCollector {
    degree: usize,
    /// The view assembled so far; after `r` completed rounds this is `B^r(v)`.
    view: View,
}

impl ViewCollector {
    /// Create a collector for a node of the given degree; its initial knowledge is
    /// `B^0(v)`, i.e. just the degree.
    pub fn new(degree: usize) -> Self {
        ViewCollector {
            degree,
            view: View::leaf(degree as u32),
        }
    }

    /// The view assembled so far.
    pub fn view(&self) -> &View {
        &self.view
    }
}

impl NodeAlgorithm for ViewCollector {
    type Message = ViewMessage;
    type Output = View;

    fn send(&mut self, _round: usize) -> Vec<Option<ViewMessage>> {
        (0..self.degree)
            .map(|p| Some((p as Port, self.view.clone())))
            .collect()
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<ViewMessage>]) {
        // Arena-backend fast path: write the per-port messages straight into the
        // engine-owned slots, skipping the intermediate vector of `send`.
        for (p, slot) in outbox.iter_mut().enumerate() {
            *slot = Some((p as Port, self.view.clone()));
        }
    }

    fn receive(&mut self, _round: usize, inbox: &mut [Option<ViewMessage>]) {
        let children = inbox
            .iter_mut()
            .enumerate()
            .map(|(p, msg)| {
                let (far_port, far_view) = msg
                    .take()
                    .expect("full-information algorithm: every neighbour sends every round");
                (p as Port, far_port, far_view)
            })
            .collect();
        // The graft: `B^r(v)` is one fresh root over the neighbours' shared `B^{r-1}`
        // handles — O(deg) work, nothing below the root is copied.
        self.view = View::from_parts(self.degree as u32, children);
    }

    fn output(&self) -> View {
        self.view.clone()
    }
}

/// Factory for [`ViewCollector`] nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ViewCollectorFactory;

impl AlgorithmFactory for ViewCollectorFactory {
    type Algo = ViewCollector;

    fn create(&self, degree: usize) -> ViewCollector {
        ViewCollector::new(degree)
    }
}

/// Run a deterministic algorithm with allotted time `rounds` in its *canonical form*:
/// collect `B^rounds(v)` by message passing, then apply `decide` — an arbitrary
/// function of the augmented truncated view — at every node. Returns the per-node
/// outputs (and the run report via the second element).
///
/// Convenience wrapper over [`run_full_information_on`] with the sequential backend.
pub fn run_full_information<O, D>(
    graph: &PortGraph,
    rounds: usize,
    decide: D,
) -> (Vec<O>, crate::runner::RunReport)
where
    O: Clone + Send,
    D: Fn(&View) -> O,
{
    run_full_information_on(graph, rounds, Backend::Sequential, decide)
}

/// [`run_full_information`] on an explicit execution [`Backend`]: the view-collection
/// phase (the entire communication cost) runs on the chosen backend; the decision map
/// is applied afterwards. Every backend produces identical outputs and reports.
pub fn run_full_information_on<O, D>(
    graph: &PortGraph,
    rounds: usize,
    backend: Backend,
    decide: D,
) -> (Vec<O>, crate::runner::RunReport)
where
    O: Clone + Send,
    D: Fn(&View) -> O,
{
    run_full_information_traced(graph, rounds, backend, &anet_trace::NoopSink, decide)
}

/// [`run_full_information_on`] with a trace probe: the view-collection rounds emit
/// [`anet_trace::TraceEvent`]s (round markers, per-phase timings, per-round message
/// counts) into `sink`. With [`anet_trace::NoopSink`] this *is*
/// `run_full_information_on` — the disabled probe reads no clock. The decision map
/// runs after the last round and is not part of the traced communication.
///
/// [`Backend::Capped`] is honoured here (unlike in the generic
/// [`Backend::run`], which cannot serialise arbitrary messages): the run goes
/// through the metered transport with the default [`crate::MessageCodec`], large
/// views stream across multiple physical rounds, and the returned
/// `report.rounds` counts physical rounds. Callers that also want the bit
/// accounting use [`crate::run_full_information_metered`] directly.
pub fn run_full_information_traced<O, D>(
    graph: &PortGraph,
    rounds: usize,
    backend: Backend,
    sink: &dyn anet_trace::TraceSink,
    decide: D,
) -> (Vec<O>, crate::runner::RunReport)
where
    O: Clone + Send,
    D: Fn(&View) -> O,
{
    if let Backend::Capped { .. } = backend {
        let (decisions, report, _) = crate::transport::run_full_information_metered(
            graph,
            rounds,
            backend,
            crate::transport::MessageCodec::default(),
            sink,
            decide,
        );
        return (decisions, report);
    }
    let RunOutcome { outputs, report } =
        backend.run_traced(graph, &ViewCollectorFactory, rounds, sink);
    let decisions = outputs.iter().map(decide).collect();
    (decisions, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;
    use anet_views::ViewTree;

    #[test]
    fn backends_collect_identical_views() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        let (seq, seq_report) =
            run_full_information_on(&g, 3, Backend::Sequential, |view| view.clone());
        for backend in Backend::smoke_set() {
            let (views, report) = run_full_information_on(&g, 3, backend, |view| view.clone());
            assert_eq!(views, seq, "{backend}");
            assert_eq!(report, seq_report, "{backend}");
        }
    }

    fn assert_views_match(g: &PortGraph, rounds: usize) {
        let outcome = Backend::Sequential.run(g, &ViewCollectorFactory, rounds);
        for v in g.nodes() {
            let expected = ViewTree::build(g, v, rounds);
            assert_eq!(
                outcome.outputs[v as usize].to_tree(),
                expected,
                "node {v} after {rounds} rounds"
            );
            // The handle form agrees too (same equality, independently built).
            assert_eq!(
                outcome.outputs[v as usize],
                View::build(g, v, rounds),
                "node {v} after {rounds} rounds (interned)"
            );
        }
    }

    #[test]
    fn collected_views_equal_direct_views_on_line() {
        let g = generators::paper_three_node_line();
        for rounds in 0..=3 {
            assert_views_match(&g, rounds);
        }
    }

    #[test]
    fn collected_views_equal_direct_views_on_star_ring_and_random() {
        assert_views_match(&generators::star(4).unwrap(), 2);
        assert_views_match(&generators::symmetric_ring(6).unwrap(), 3);
        assert_views_match(&generators::random_connected(18, 4, 6, 99).unwrap(), 3);
    }

    #[test]
    fn view_collector_initial_state_is_depth_zero_view() {
        let c = ViewCollector::new(5);
        assert_eq!(c.view().degree(), 5);
        assert!(c.view().children().is_empty());
    }

    #[test]
    fn collected_views_share_subtrees_across_ports() {
        // The structural-sharing contract: after round r, the subtree under child p of
        // B^r(v) is *the same object* the neighbour across port p sent — which is in
        // turn the neighbour's whole B^{r-1}. Sends bump a refcount, they don't copy.
        let g = generators::random_connected(12, 4, 4, 7).unwrap();
        let rounds = 3;
        let outcome = Backend::Sequential.run(&g, &ViewCollectorFactory, rounds);
        for v in g.nodes() {
            let view = &outcome.outputs[v as usize];
            for (child, (_, u, _)) in view.children().iter().zip(g.ports(v)) {
                // The neighbour's B^{r-1} is its own collected view truncated one
                // level; equality (not just isomorphism) must hold.
                assert_eq!(
                    child.2,
                    outcome.outputs[u as usize].truncated(rounds - 1),
                    "child across port to {u}"
                );
                // And the sharing itself: every node adjacent to `u` holds the *same
                // object* for `u`'s round-(r−1) view, because `u` sent one handle to
                // all its ports. A collector that deep-cloned per send would pass the
                // equality above but fail this pointer check.
                for w in g.nodes().filter(|&w| w != v) {
                    if let Some(p_back) = g.ports(w).position(|(_, x, _)| x == u) {
                        assert!(
                            View::ptr_eq(
                                &child.2,
                                &outcome.outputs[w as usize].children()[p_back].2
                            ),
                            "nodes {v} and {w} must share u={u}'s view object"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_information_decision_runs_the_paper_model() {
        // Decide "leader" iff the view has a degree-3 node at the root — on a star this
        // elects exactly the centre after 0 rounds.
        let g = generators::star(3).unwrap();
        let (decisions, report) = run_full_information(&g, 0, |view| view.degree() == 3);
        assert_eq!(decisions, vec![true, false, false, false]);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn message_count_of_full_information_is_2m_per_round() {
        let g = generators::random_connected(20, 4, 5, 3).unwrap();
        let rounds = 3;
        let outcome = Backend::Sequential.run(&g, &ViewCollectorFactory, rounds);
        assert_eq!(
            outcome.report.messages_delivered,
            2 * g.num_edges() * rounds
        );
    }
}
