//! # anet-sim — synchronous LOCAL-model simulator
//!
//! The paper works in the standard LOCAL communication model: communication proceeds
//! in synchronous rounds, all nodes start simultaneously, and in each round every node
//! may exchange arbitrary messages with all of its neighbours and perform arbitrary
//! local computation. Nodes are anonymous; the only local structure is the degree and
//! the port numbering of incident edges.
//!
//! This crate provides
//!
//! * [`model`] — the [`model::NodeAlgorithm`] / [`model::AlgorithmFactory`] traits that
//!   distributed algorithms implement,
//! * [`backend`] — the execution backends: [`Backend::Sequential`],
//!   [`Backend::Parallel`], the arena-based [`Backend::Batching`] and the
//!   chunk-size-adaptive [`Backend::AdaptiveParallel`] share one round structure
//!   (send → route → receive) and differ only in how the phases are scheduled and
//!   where the message buffers live; the [`Simulator`] trait abstracts over them for
//!   higher layers such as the `ElectionEngine` facade in `anet-core`,
//! * [`budget`] — scoped per-thread caps on backend worker counts
//!   ([`with_thread_budget`]), so many concurrent election runs (the multi-tenant
//!   service) don't oversubscribe the machine at `n × available_parallelism`,
//! * [`pool`] — a std-only work-stealing pool ([`run_indexed`]) for batches of
//!   independent jobs with deterministic, job-order results; the scheduling core of
//!   both the election service and the parallel sweep driver,
//! * [`runner`] — the [`runner::RunOutcome`] / [`runner::RunReport`] result types,
//! * [`full_info`] — the *full-information* algorithm in which every node forwards
//!   everything it knows each round; after `r` rounds its knowledge is exactly the
//!   augmented truncated view `B^r(v)`, which is the information-theoretic ceiling the
//!   paper's model assumes. The helper [`full_info::run_full_information_on`] runs it
//!   on any backend and applies an arbitrary decision function of `B^r(v)` — precisely
//!   the paper's notion of a deterministic algorithm with allotted time `r`,
//! * [`transport`] — the bit-metered wire mode: every message serialised through a
//!   [`MessageCodec`] (unfolded tree, shared DAG, or round-over-round delta), exact
//!   per-round/per-edge bit accounting in [`WireStats`], and the CONGEST-style
//!   [`Backend::Capped`] bandwidth cap under which large views stream across
//!   multiple physical rounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod budget;
pub mod full_info;
pub mod model;
pub mod pool;
pub mod runner;
pub mod transport;

pub use backend::{Backend, Simulator};
pub use budget::{thread_budget, with_thread_budget};
pub use full_info::{
    run_full_information, run_full_information_on, run_full_information_traced, ViewCollector,
    ViewCollectorFactory,
};
pub use model::{AlgorithmFactory, NodeAlgorithm};
pub use pool::{run_indexed, PoolStats};
pub use runner::{RunOutcome, RunReport};
pub use transport::{run_full_information_metered, run_metered, MessageCodec, WireStats};
