//! # anet-sim — synchronous LOCAL-model simulator
//!
//! The paper works in the standard LOCAL communication model: communication proceeds
//! in synchronous rounds, all nodes start simultaneously, and in each round every node
//! may exchange arbitrary messages with all of its neighbours and perform arbitrary
//! local computation. Nodes are anonymous; the only local structure is the degree and
//! the port numbering of incident edges.
//!
//! This crate provides
//!
//! * [`model`] — the [`model::NodeAlgorithm`] / [`model::AlgorithmFactory`] traits that
//!   distributed algorithms implement,
//! * [`runner`] — the synchronous round engine (sequential and multi-threaded via
//!   crossbeam scoped threads), with message-count accounting,
//! * [`full_info`] — the *full-information* algorithm in which every node forwards
//!   everything it knows each round; after `r` rounds its knowledge is exactly the
//!   augmented truncated view `B^r(v)`, which is the information-theoretic ceiling the
//!   paper's model assumes. The helper [`full_info::run_full_information`] runs it and
//!   applies an arbitrary decision function of `B^r(v)` — precisely the paper's notion
//!   of a deterministic algorithm with allotted time `r`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod full_info;
pub mod model;
pub mod runner;

pub use full_info::{run_full_information, ViewCollector, ViewCollectorFactory};
pub use model::{AlgorithmFactory, NodeAlgorithm};
pub use runner::{run, run_parallel, RunReport};
