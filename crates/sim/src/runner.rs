//! Run reports: the uniform result types of every backend.
//!
//! The synchronous round engine itself lives in [`crate::backend`]. The historical
//! free-function entry points `run` / `run_parallel` went through a deprecation cycle
//! and are gone; use [`Backend::run`](crate::Backend::run) (or the `ElectionEngine`
//! facade in `anet-core`) instead.

/// Statistics about a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of rounds executed.
    pub rounds: usize,
    /// Total number of messages delivered over the whole run (a message sent on a port
    /// with no neighbour cannot happen: ports always correspond to edges).
    pub messages_delivered: usize,
}

/// Outcome of a run: per-node outputs in node order, plus statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// `outputs[v]` is the output of node `v`.
    pub outputs: Vec<O>,
    /// Run statistics.
    pub report: RunReport,
}

#[cfg(test)]
mod tests {
    use crate::backend::Backend;
    use crate::model::NodeAlgorithm;
    use anet_graph::generators;

    /// Flood-max on degrees: every node repeatedly broadcasts the largest degree it has
    /// heard of. (Degrees are the only initial asymmetry available to anonymous nodes.)
    #[derive(Clone)]
    struct MaxDegreeFlood {
        degree: usize,
        best: usize,
    }

    impl NodeAlgorithm for MaxDegreeFlood {
        type Message = usize;
        type Output = usize;

        fn send(&mut self, _round: usize) -> Vec<Option<usize>> {
            vec![Some(self.best); self.degree]
        }

        fn receive(&mut self, _round: usize, inbox: &mut [Option<usize>]) {
            for m in inbox.iter_mut().filter_map(Option::take) {
                self.best = self.best.max(m);
            }
        }

        fn output(&self) -> usize {
            self.best
        }
    }

    fn flood_factory(degree: usize) -> MaxDegreeFlood {
        MaxDegreeFlood {
            degree,
            best: degree,
        }
    }

    #[test]
    fn flooding_converges_after_diameter_rounds() {
        let g = generators::star(4).unwrap();
        let out = Backend::Sequential.run(&g, &flood_factory, 2);
        assert!(out.outputs.iter().all(|&b| b == 4));

        // A "broom": a path 0-1-2-3-4 with two extra leaves on node 0, so node 0 has
        // degree 3 and node 4 only learns that after 4 rounds.
        let mut b = anet_graph::GraphBuilder::with_nodes(7);
        for i in 0..4u32 {
            let pu = if i == 0 { 0 } else { 1 };
            b.add_edge(i, pu, i + 1, 0).unwrap();
        }
        b.add_edge(0, 1, 5, 0).unwrap();
        b.add_edge(0, 2, 6, 0).unwrap();
        let broom = b.build().unwrap();
        let out_short = Backend::Sequential.run(&broom, &flood_factory, 1);
        assert!(out_short.outputs.iter().any(|&b| b != 3));
        let out_full = Backend::Sequential.run(&broom, &flood_factory, broom.diameter() as usize);
        assert!(out_full.outputs.iter().all(|&b| b == 3));
    }

    #[test]
    fn message_accounting_counts_deliveries() {
        // The routing phase is shared by every backend, so the accounting must be
        // byte-identical across them: 5 nodes × 2 ports × 3 rounds deliveries.
        let g = generators::symmetric_ring(5).unwrap();
        for backend in Backend::smoke_set() {
            let out = backend.run(&g, &flood_factory, 3);
            assert_eq!(out.report.messages_delivered, 30, "{backend}");
            assert_eq!(out.report.rounds, 3, "{backend}");
        }
    }

    #[test]
    fn zero_rounds_returns_initial_outputs() {
        let g = generators::star(3).unwrap();
        let out = Backend::Sequential.run(&g, &flood_factory, 0);
        assert_eq!(out.outputs, vec![3, 1, 1, 1]);
        assert_eq!(out.report.messages_delivered, 0);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        // Engine-equivalence: every backend must produce identical outputs *and*
        // identical reports for the same algorithm on the same graph.
        let g = generators::random_connected(60, 5, 30, 123).unwrap();
        let rounds = 4;
        let seq = Backend::Sequential.run(&g, &flood_factory, rounds);
        for backend in Backend::smoke_set() {
            let out = backend.run(&g, &flood_factory, rounds);
            assert_eq!(out.outputs, seq.outputs, "{backend}");
            assert_eq!(out.report, seq.report, "{backend}");
        }
    }

    /// An algorithm that echoes what it receives, used to check that port routing is
    /// faithful (the message sent through port p of v arrives at the far end's port q).
    struct PortEcho {
        degree: usize,
        /// `(round, port, payload)` triples received.
        log: Vec<(usize, usize, (u32, u32))>,
        node_tag: u32,
    }

    impl NodeAlgorithm for PortEcho {
        type Message = (u32, u32); // (sender tag, sender port)
        type Output = Vec<(usize, usize, (u32, u32))>;

        fn send(&mut self, _round: usize) -> Vec<Option<(u32, u32)>> {
            (0..self.degree)
                .map(|p| Some((self.node_tag, p as u32)))
                .collect()
        }

        fn receive(&mut self, round: usize, inbox: &mut [Option<(u32, u32)>]) {
            for (p, m) in inbox.iter_mut().enumerate() {
                if let Some(m) = m.take() {
                    self.log.push((round, p, m));
                }
            }
        }

        fn output(&self) -> Vec<(usize, usize, (u32, u32))> {
            self.log.clone()
        }
    }

    #[test]
    fn routing_respects_port_numbers() {
        // NOTE: the node_tag here is test instrumentation (the factory closure uses a
        // counter), not information available to a real anonymous algorithm.
        use std::sync::atomic::{AtomicU32, Ordering};
        let g = generators::paper_three_node_line();
        let counter = AtomicU32::new(0);
        let factory = |degree: usize| PortEcho {
            degree,
            log: Vec::new(),
            node_tag: counter.fetch_add(1, Ordering::SeqCst),
        };
        let out = Backend::Sequential.run(&g, &factory, 1);
        // Node 1 (the centre, tag 1) must receive on port 0 the message node 0 sent on
        // its port 0, and on port 1 the message node 2 sent on its port 0.
        let centre_log = &out.outputs[1];
        assert!(centre_log.contains(&(1, 0, (0, 0))));
        assert!(centre_log.contains(&(1, 1, (2, 0))));
        // Node 0 receives on its port 0 the message node 1 sent on its port 0.
        assert!(out.outputs[0].contains(&(1, 0, (1, 0))));
        // Node 2 receives on its port 0 the message node 1 sent on its port 1.
        assert!(out.outputs[2].contains(&(1, 0, (1, 1))));
    }
}
