//! End-to-end tests: the fixture suite must behave as labelled, and the
//! workspace itself must lint clean — so a regression anywhere in the tree
//! fails `cargo test` as well as the dedicated CI job.

use std::path::Path;

#[test]
fn fixtures_behave_as_labelled() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = anet_lint::self_check(&fixtures).expect("read fixtures");
    assert!(
        report.passed(),
        "self-check failed:\n{}",
        report.failures.join("\n")
    );
    assert!(
        report.checked >= 15,
        "fixture suite shrank to {}",
        report.checked
    );
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "not at workspace root: {}",
        root.display()
    );
    let diags = anet_lint::lint_workspace(&root).expect("walk workspace");
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
