//! Adversarial tests for the anet-lint lexer.
//!
//! The lexer must be *total*: for any byte sequence that is valid UTF-8 it
//! terminates, never panics, and returns tokens whose spans are in-bounds,
//! monotonically non-decreasing, and non-empty. On well-formed-but-nasty Rust
//! (nested comments, raw-string fences, lifetimes vs chars) it must also
//! classify correctly, because every pass trusts those classifications.

use anet_lint::lexer::{lex, TokenKind};

/// Structural invariants every lex result must satisfy, whatever the input.
fn assert_span_invariants(src: &str) {
    let tokens = lex(src);
    let mut prev_end = 0;
    for t in &tokens {
        assert!(
            t.start < t.end,
            "empty span {}..{} in {:?}",
            t.start,
            t.end,
            src
        );
        assert!(
            t.end <= src.len(),
            "span {}..{} past end of {:?}",
            t.start,
            t.end,
            src
        );
        assert!(t.start >= prev_end, "overlapping spans in {:?}", src);
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        prev_end = t.end;
    }
}

fn kinds(src: &str) -> Vec<TokenKind> {
    lex(src).iter().map(|t| t.kind).collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* a /* b /* c */ d */ e */ fn";
    let toks = lex(src);
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert_eq!(toks[0].text(src), "/* a /* b /* c */ d */ e */");
    assert_eq!(toks[1].text(src), "fn");
}

#[test]
fn unterminated_nested_comment_consumes_rest() {
    let src = "/* open /* deeper */ still open\nfn ghost() {}";
    let toks = lex(src);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert_eq!(toks[0].end, src.len());
}

#[test]
fn raw_string_fences_must_match_hash_count() {
    let src = r####"let s = r##"contains "# and even "quotes""## ; done"####;
    let toks = lex(src);
    let raw = toks
        .iter()
        .find(|t| t.kind == (TokenKind::Str { raw: true }))
        .expect("raw string token");
    assert!(raw.text(src).ends_with(r###""##"###));
    let after: Vec<&str> = toks.iter().map(|t| t.text(src)).collect();
    assert!(
        after.contains(&"done"),
        "lexer lost its footing after the raw string: {after:?}"
    );
}

#[test]
fn raw_byte_strings_and_byte_chars() {
    let src = r#"let a = br"no // comment here"; let b = b'q';"#;
    let toks = lex(src);
    assert!(
        toks.iter().all(|t| !t.kind.is_comment()),
        "// inside a raw byte string misread as a comment"
    );
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Char && t.text(src) == "b'q'"));
}

#[test]
fn lifetimes_are_not_chars() {
    let src = "fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; break 'outer; }";
    let toks = lex(src);
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'outer"]);
    assert_eq!(chars, vec!["'a'", "'\\''"]);
}

#[test]
fn doc_comments_are_still_comments() {
    let src = "/// outer doc .unwrap()\n//! inner doc\n/** block doc */ fn f() {}";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::LineComment);
    assert_eq!(toks[1].kind, TokenKind::LineComment);
    assert_eq!(toks[2].kind, TokenKind::BlockComment);
    assert_eq!(toks[3].text(src), "fn");
}

#[test]
fn string_escapes_do_not_end_strings_early() {
    let src = r#"let s = "quote \" slash \\ done"; next"#;
    let toks = lex(src);
    let s = toks
        .iter()
        .find(|t| matches!(t.kind, TokenKind::Str { .. }))
        .expect("string token");
    assert_eq!(s.text(src), r#""quote \" slash \\ done""#);
    assert!(toks.iter().any(|t| t.text(src) == "next"));
}

#[test]
fn line_and_column_tracking_survives_multibyte() {
    let src = "let emoji = \"\u{1F600}\u{1F600}\";\nlet after = 1;";
    let toks = lex(src);
    let after = toks.iter().find(|t| t.text(src) == "after").unwrap();
    assert_eq!(after.line, 2);
    assert_eq!(after.col, 5);
}

#[test]
fn numbers_and_raw_identifiers() {
    assert!(kinds("0xFF_u64 0b1010 0o77 1_000.5e-3 42u32")
        .iter()
        .all(|k| *k == TokenKind::Number));
    let src = "r#match + r#type";
    let idents: Vec<&str> = lex(src)
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
        .collect();
    assert!(
        idents.contains(&"match") && idents.contains(&"type"),
        "{idents:?}"
    );
}

#[test]
fn pathological_terminators_do_not_hang_or_panic() {
    for src in [
        "\"unterminated",
        "'",
        "'a",
        "'\\",
        "r\"open",
        "r###\"never closed\"##",
        "b\"open",
        "br##\"open",
        "/* never closed",
        "/*/",
        "r#",
        "r#\"\"",
        "''",
        "0x",
        "1e",
        "\\",
    ] {
        assert_span_invariants(src);
    }
}

/// SplitMix64: a tiny deterministic PRNG so the sweep needs no dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Flip random bits/bytes of a legitimate source file and lex every mutant.
/// The lexer may classify mutants however it likes — it just can't crash,
/// loop, or emit out-of-bounds spans.
#[test]
fn bit_flip_sweep_never_panics() {
    let base = concat!(
        "// anet-lint: allow(panic-path) — fixture text only\n",
        "fn mix<'a>(xs: &'a [u8]) -> String {\n",
        "    let raw = r#\"fence \"# inside\"#;\n",
        "    /* block /* nested */ tail */\n",
        "    let c = '\\u{1F600}'; let b = b'q';\n",
        "    format!(\"{raw}{c}{b}{}\", 0xFF_u64)\n",
        "}\n"
    );
    let mut rng = SplitMix64(0x4E07_2021_5841_AD5E);
    for _ in 0..4000 {
        let mut bytes = base.as_bytes().to_vec();
        for _ in 0..(1 + rng.next() % 4) {
            let i = (rng.next() as usize) % bytes.len();
            match rng.next() % 3 {
                0 => bytes[i] ^= 1 << (rng.next() % 8),
                1 => bytes[i] = (rng.next() % 128) as u8,
                _ => {
                    bytes.truncate(i);
                }
            }
            if bytes.is_empty() {
                break;
            }
        }
        if let Ok(mutant) = String::from_utf8(bytes) {
            assert_span_invariants(&mutant);
        }
    }
}
