//! Known-good: a panic-free parser (typed errors, a documented allow-site,
//! and tests that may unwrap freely).

// anet-lint: deny(panic-path)

fn parse_count(text: &str) -> Result<u64, String> {
    let field = text
        .split(':')
        .nth(1)
        .ok_or_else(|| "missing count field".to_string())?;
    field.trim().parse().map_err(|_| "count must be numeric".to_string())
}

fn checked_get(values: &[u32], hint: usize) -> u32 {
    // anet-lint: allow(panic-path) — `hint` was validated against len() above.
    values.get(hint).copied().unwrap()
}

// A free function named `expect` is not the panicking method.
fn expect(bytes: &[u8], pos: usize, want: u8) -> bool {
    bytes.get(pos) == Some(&want)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::parse_count("count: 3").unwrap();
        assert!(super::expect(b"x", 0, b'x'));
    }
}
