//! Known-good: a registered hot path that only mutates caller-owned arenas.

// anet-lint: hot-path
fn route_round(out: &mut [Option<u32>], inbox: &mut [Option<u32>], delivered: &mut usize) {
    for slot in inbox.iter_mut() {
        *slot = None;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        if let Some(message) = slot.take() {
            inbox[i] = Some(message);
            *delivered += 1;
        }
    }
}

// An unregistered helper may allocate freely.
fn cold_setup(total: usize) -> Vec<Option<u32>> {
    vec![None; total]
}
