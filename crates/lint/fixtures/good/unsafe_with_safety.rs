//! Known-good: every unsafe block carries a `// SAFETY:` audit directly above.

fn read_first(data: &[u32]) -> u32 {
    let ptr = data.as_ptr();
    // SAFETY: `data` is a live, non-empty slice (the caller asserts len > 0),
    // so reading the first element through its own pointer is in bounds.
    unsafe { *ptr }
}
