//! Known-good: adversarial surface syntax. Every construct here is designed to
//! trick a naive lexer into seeing code where there is only text — the passes
//! must report nothing.

/* A block comment /* with a nested block comment */ still one comment,
   mentioning vec![], .unwrap(), panic!() and unsafe — all inert. */

fn strings_full_of_code() -> Vec<String> {
    vec![
        "inert: x.unwrap(); y.expect(\"boom\"); panic!(\"no\")".to_string(),
        "inert schema mention: see anet-torture/v1 for details".to_string(),
        r#"raw string with "quotes" and .clone() and Vec::new()"#.to_string(),
        r##"raw with fences: "# not the end, nor is "#, but the next is"##.to_string(),
        String::from_utf8_lossy(b"byte string with // not a comment").into_owned(),
        format!("{}", '\u{1F600}'),
    ]
}

fn lifetimes_vs_chars<'a>(input: &'a str) -> (&'a str, char, char, u8) {
    let c = 'a';
    let escaped = '\'';
    let byte = b'q';
    'outer: for _ in 0..1 {
        break 'outer;
    }
    (input, c, escaped, byte)
}

fn raw_identifiers() -> u32 {
    let r#match = 1u32;
    let r#type = 2u32;
    r#match + r#type
}

fn numeric_shapes() -> (u64, f64, u32) {
    (0xFF_u64 + 0b1010 + 0o77, 1_000.5e-3, 42u32)
}
