//! Known-good: one const definition, referenced by writer and parser alike;
//! prose mentions of the schema inside longer strings are fine.

pub const FIXTURE_SCHEMA: &str = "anet-fixture/v7";

fn write_header() -> String {
    format!("{{\"schema\": {FIXTURE_SCHEMA:?}}}")
}

fn check_header(found: &str) -> Result<(), String> {
    if found == FIXTURE_SCHEMA {
        Ok(())
    } else {
        Err(format!("expected an anet-fixture/v7 document, got {found:?}"))
    }
}
