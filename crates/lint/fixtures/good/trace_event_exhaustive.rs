//! Known-good: a TraceEvent consumer that lists every variant, so adding one
//! is a compile error here. Wildcards over *other* enums stay legal.

fn count_messages(events: &[TraceEvent]) -> u64 {
    let mut total = 0;
    for event in events {
        match event {
            TraceEvent::RoundEnd { messages, .. } => total += messages,
            TraceEvent::RunStart { .. }
            | TraceEvent::RoundStart { .. }
            | TraceEvent::PhaseTime { .. }
            | TraceEvent::RunEnd { .. }
            | TraceEvent::InternerDelta { .. }
            | TraceEvent::WorkerExecute { .. }
            | TraceEvent::WorkerSteal { .. } => {}
        }
    }
    total
}

fn phase_index(phase: Phase) -> u32 {
    match phase {
        Phase::Send => 0,
        _ => 1,
    }
}
