//! Known-good: every path acquires deque before completion log, temporaries
//! release at statement end, and solver work runs only after `drop`.

// anet-lint: deny(lock-order)

use std::sync::Mutex;

struct Scheduler {
    deques: Vec<Mutex<Vec<u32>>>,
    completed: Mutex<Vec<u32>>,
}

impl Scheduler {
    fn pop_then_log(&self, w: usize) {
        let job = self.deques[w].lock().unwrap().pop();
        if let Some(job) = job {
            self.completed.lock().unwrap().push(job);
        }
    }

    fn finish(&self, w: usize, solver: &Solver) {
        let d = self.deques[w].lock().unwrap();
        let c = self.completed.lock().unwrap();
        drop(c);
        drop(d);
        solver.execute();
    }
}
