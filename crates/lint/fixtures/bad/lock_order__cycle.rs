//! Known-bad: two code paths acquire the same pair of locks in opposite
//! orders — the classic deadlock shape the acquisition graph must reject.

// anet-lint: deny(lock-order)

use std::sync::Mutex;

struct Scheduler {
    deques: Vec<Mutex<Vec<u32>>>,
    completed: Mutex<Vec<u32>>,
}

impl Scheduler {
    fn finish_first(&self) {
        let d = self.deques[0].lock().unwrap();
        let c = self.completed.lock().unwrap();
        drop((d, c));
    }

    fn finish_second(&self) {
        let c = self.completed.lock().unwrap();
        let d = self.deques[0].lock().unwrap();
        drop((c, d));
    }
}
