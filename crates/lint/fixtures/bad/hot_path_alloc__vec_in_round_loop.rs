//! Known-bad: a registered hot path that allocates every round.

// anet-lint: hot-path
fn route_round(out: &mut [Option<u32>], inbox: &mut Vec<Option<u32>>) {
    // Rebuilding the inbox per round is exactly the regression the pass exists
    // to catch: the arenas must be reused in place.
    let fresh: Vec<Option<u32>> = out.iter().map(|s| s.clone()).collect();
    *inbox = fresh;
    let label = format!("round with {} slots", inbox.len());
    drop(label);
}
