//! Known-bad: a parser on the panic-free path that unwraps its way through
//! malformed input instead of returning typed errors.

// anet-lint: deny(panic-path)

fn parse_count(text: &str) -> u64 {
    let field = text.split(':').nth(1).unwrap();
    field.trim().parse().expect("count must be numeric")
}

fn dispatch(kind: &str) -> u32 {
    match kind {
        "meta" => 0,
        "phase" => 1,
        _ => panic!("unknown kind {kind:?}"),
    }
}
