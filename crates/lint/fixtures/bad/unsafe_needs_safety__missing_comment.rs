//! Known-bad: an unsafe block with no `// SAFETY:` justification.

fn read_first(data: &[u32]) -> u32 {
    let ptr = data.as_ptr();
    // fast path, bounds were checked by the caller
    unsafe { *ptr }
}
