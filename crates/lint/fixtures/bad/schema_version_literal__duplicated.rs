//! Known-bad: the writer and the parser each spell the schema string out,
//! so a version bump can update one and silently strand the other.

fn write_header() -> String {
    format!("{{\"schema\": {:?}}}", "anet-fixture/v3")
}

fn check_header(found: &str) -> bool {
    found == "anet-fixture/v3"
}
