//! Known-bad: a TraceEvent consumer with a wildcard arm — a newly added
//! variant would be silently dropped from this report instead of failing to
//! compile.

fn count_messages(events: &[TraceEvent]) -> u64 {
    let mut total = 0;
    for event in events {
        match event {
            TraceEvent::RoundEnd { messages, .. } => total += messages,
            _ => {}
        }
    }
    total
}
