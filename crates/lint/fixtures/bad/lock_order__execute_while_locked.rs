//! Known-bad: running solver work while a deque guard is live serialises the
//! whole pool on one lock.

// anet-lint: deny(lock-order)

use std::sync::Mutex;

struct Pool {
    deques: Vec<Mutex<Vec<u32>>>,
}

impl Pool {
    fn drain(&self, solver: &Solver) {
        let guard = self.deques[0].lock().unwrap();
        // The guard is still held here: the solver runs under the deque lock.
        solver.execute();
        drop(guard);
    }
}
