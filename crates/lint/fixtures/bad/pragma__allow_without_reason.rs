//! Known-bad: suppression pragmas that don't say why, and one naming a pass
//! that does not exist — both must be diagnostics, or typos silently disable
//! enforcement.

// anet-lint: deny(panic-path)

fn first(values: &[u32]) -> u32 {
    // anet-lint: allow(panic-path)
    values.first().copied().unwrap()
}

// anet-lint: allow(panick-path) — typo in the pass name
fn second(values: &[u32]) -> u32 {
    values[0]
}
