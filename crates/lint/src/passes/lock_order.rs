//! `lock-order`: files opted in with `// anet-lint: deny(lock-order)` get
//! their `Mutex` acquisitions tracked. The pass discovers lock classes (struct
//! fields typed `Mutex<…>`, possibly behind `Vec`/`Arc`), simulates guard
//! lifetimes token-by-token, records an acquisition-order edge whenever class B
//! is taken while class A is held, and reports:
//!
//! - a **cycle** in the cross-file acquisition graph (deadlock potential),
//! - a **self-edge**: re-acquiring a class already held (the striped-shard
//!   discipline in `anet_views::shared` forbids holding two shards at once),
//! - a **solver call while locked**: `execute`/`run`/`intern`/… invoked while
//!   any deque or shard guard is live, which serialises the whole service on
//!   one lock.
//!
//! Guard lifetime heuristic: `let g = <acquisition>…;` binds a named guard
//! released when its brace scope closes or `drop(g)` runs; any other
//! acquisition is a temporary released at the next `;` at its own brace depth
//! (which matches how `if let … = m.lock()…` extends a temporary to the end of
//! the `if` in Rust 2021).

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::Pass;
use std::collections::{BTreeMap, BTreeSet};

/// Method names that execute solver / interner work — never call these while
/// holding a deque or shard lock.
const BANNED_WHILE_LOCKED: &[&str] = &[
    "execute",
    "run",
    "run_traced",
    "run_batch",
    "run_on",
    "solve",
    "build_all",
    "intern",
    "intern_tree",
];

/// Wrapper types looked through when resolving `field: Vec<Mutex<…>>`.
const WRAPPERS: &[&str] = &["Vec", "Arc", "Box", "Option"];

/// A live guard during simulation.
struct Held {
    class: String,
    /// `Some(name)` for `let name = …` bindings, `None` for temporaries.
    name: Option<String>,
    /// Brace depth the guard was created at; a named guard dies when depth
    /// drops below it, a temporary at the first `;` at or below it.
    depth: usize,
}

/// An acquisition-order edge with the site that created it.
struct Edge {
    from: String,
    to: String,
    file: std::path::PathBuf,
    line: u32,
    col: u32,
}

/// See module docs.
#[derive(Default)]
pub struct LockOrder {
    edges: Vec<Edge>,
}

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        if !file.denies(self.name()) {
            return Vec::new();
        }
        let classes = discover_classes(file);
        if classes.is_empty() {
            return Vec::new();
        }
        self.simulate(file, &classes)
    }

    fn finish(&mut self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        // Deduplicate edges per (from, to), keeping the first site.
        let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        let mut sites: BTreeMap<(&str, &str), &Edge> = BTreeMap::new();
        for e in &self.edges {
            graph.entry(&e.from).or_default().insert(&e.to);
            sites.entry((&e.from, &e.to)).or_insert(e);
        }
        for cycle in find_cycles(&graph) {
            let (from, to) = (cycle[0], cycle[1 % cycle.len()]);
            if let Some(site) = sites.get(&(from, to)) {
                diags.push(Diagnostic {
                    pass: self.name(),
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "lock acquisition cycle: {} — pick one global order",
                        cycle.join(" -> ")
                    ),
                });
            }
        }
        diags
    }
}

impl LockOrder {
    /// Walk the file's code tokens, maintaining the set of held guards.
    fn simulate(&mut self, file: &SourceFile, classes: &BTreeSet<String>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        let mut stmt_start = 0usize; // code index of the current statement's first token
        let mut k = 0usize;
        while k < file.code.len() {
            if file.code_is_punct(k, '{') {
                depth += 1;
                stmt_start = k + 1;
            } else if file.code_is_punct(k, '}') {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
                stmt_start = k + 1;
            } else if file.code_is_punct(k, ';') {
                held.retain(|g| g.name.is_some() || g.depth < depth);
                stmt_start = k + 1;
            } else if file.code_is(k, "drop") && file.code_is_punct(k + 1, '(') {
                let dropped = file.code_tok(k + 2).to_string();
                held.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
            } else if let Some(class) = acquisition_at(file, k, classes) {
                if !file.code_in_test(k) {
                    for g in &held {
                        if g.class == class {
                            diags.push(file.diag_at_code(
                                self.name(),
                                k,
                                format!(
                                    "acquiring lock class `{class}` while already holding \
                                     `{class}` — never hold two stripes/shards at once"
                                ),
                            ));
                        } else {
                            let t = &file.tokens[file.code[k]];
                            self.edges.push(Edge {
                                from: g.class.clone(),
                                to: class.clone(),
                                file: file.path.clone(),
                                line: t.line,
                                col: t.col,
                            });
                        }
                    }
                    held.push(Held {
                        class: class.clone(),
                        name: binding_name(file, stmt_start, k),
                        depth,
                    });
                }
            } else if !held.is_empty()
                && !file.code_in_test(k)
                && k > 0
                && file.code_is_punct(k - 1, '.')
                && file.code_is_punct(k + 1, '(')
                && BANNED_WHILE_LOCKED.iter().any(|m| file.code_is(k, m))
            {
                let held_names: Vec<&str> = held.iter().map(|g| g.class.as_str()).collect();
                diags.push(file.diag_at_code(
                    self.name(),
                    k,
                    format!(
                        "`.{}()` called while holding lock `{}` — release the guard before \
                         executing work",
                        file.code_tok(k),
                        held_names.join("`, `")
                    ),
                ));
            }
            k += 1;
        }
        diags
    }
}

/// Struct fields whose type mentions `Mutex<…>`: the lock classes of the file.
fn discover_classes(file: &SourceFile) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for k in 0..file.code.len() {
        if !file.code_is(k, "Mutex") || !file.code_is_punct(k + 1, '<') {
            continue;
        }
        // Walk back through wrapper generics (`Vec <`, `Arc <`) and slice
        // brackets (`Box<[Mutex<…>]>`) to the `:`.
        let mut j = k;
        loop {
            if j >= 1 && file.code_is_punct(j - 1, '[') {
                j -= 1;
            } else if j >= 2
                && file.code_is_punct(j - 1, '<')
                && WRAPPERS.iter().any(|w| file.code_is(j - 2, w))
            {
                j -= 2;
            } else {
                break;
            }
        }
        if j >= 2 && file.code_is_punct(j - 1, ':') {
            // `name : [wrappers] Mutex <` — and not a `let` binding's ascription.
            let is_let = j >= 3 && file.code_is(j - 3, "let");
            if !is_let {
                classes.insert(file.code_tok(j - 2).to_string());
            }
        }
    }
    classes
}

/// If code token `k` begins a lock acquisition, return its class.
/// Recognised shapes: `<field>…​.lock(` (any `.x`/`[i]` projections between)
/// and `lock_or_poison(&…<field>…)`.
fn acquisition_at(file: &SourceFile, k: usize, classes: &BTreeSet<String>) -> Option<String> {
    // `lock_or_poison(…)` / helper form: class is the known field named inside.
    if file.code_is(k, "lock_or_poison") && file.code_is_punct(k + 1, '(') {
        let mut depth = 0usize;
        let mut j = k + 1;
        while j < file.code.len() {
            if file.code_is_punct(j, '(') {
                depth += 1;
            } else if file.code_is_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if classes.contains(file.code_tok(j)) {
                return Some(file.code_tok(j).to_string());
            }
            j += 1;
        }
        // The argument names no field (a closure parameter, an accessor call):
        // in a single-class file it can only be that class.
        if classes.len() == 1 {
            return classes.iter().next().cloned();
        }
        return None;
    }
    // `<expr>.lock(`: resolve the root field by walking back over projections.
    if !file.code_is(k, "lock")
        || !file.code_is_punct(k + 1, '(')
        || k == 0
        || !file.code_is_punct(k - 1, '.')
    {
        return None;
    }
    let mut j = k - 1; // the `.`
    loop {
        if j == 0 {
            return None;
        }
        j -= 1; // token before `.` / `[`
        if file.code_is_punct(j, ']') {
            // skip the index expression back to its `[`
            let mut depth = 0usize;
            loop {
                if file.code_is_punct(j, ']') {
                    depth += 1;
                } else if file.code_is_punct(j, '[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if classes.contains(file.code_tok(j)) {
            return Some(file.code_tok(j).to_string());
        }
        // keep walking only through `.field` projections
        if j == 0 || !file.code_is_punct(j - 1, '.') {
            return None;
        }
        j -= 1;
    }
}

/// Is the acquisition at `k` bound by `let <name> = …;` as a guard? The
/// statement must start exactly `let name =`, and after the acquisition call
/// only `.unwrap()` / `.expect(…)` may follow before the `;` — anything else
/// (`.pop_front()`, `.push(…)`) consumes the guard as a temporary and binds
/// its *result*, not the lock.
fn binding_name(file: &SourceFile, stmt_start: usize, k: usize) -> Option<String> {
    let mut s = stmt_start;
    if !file.code_is(s, "let") {
        return None;
    }
    if file.code_is(s + 1, "mut") {
        s += 1;
    }
    if !file.code_is_punct(s + 2, '=') || s + 2 >= k {
        return None;
    }
    let name = file.code_tok(s + 1).to_string();
    // `k` is `lock` / `lock_or_poison`; `k + 1` its `(`. Walk past the call and
    // any unwrap/expect chain; a guard binding ends the statement right there.
    let mut j = matching_paren(file, k + 1)?;
    while file.code_is_punct(j + 1, '.')
        && (file.code_is(j + 2, "unwrap") || file.code_is(j + 2, "expect"))
        && file.code_is_punct(j + 3, '(')
    {
        j = matching_paren(file, j + 3)?;
    }
    file.code_is_punct(j + 1, ';').then_some(name)
}

/// Code index of the `)` matching the `(` at code index `open`.
fn matching_paren(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in open..file.code.len() {
        if file.code_is_punct(j, '(') {
            depth += 1;
        } else if file.code_is_punct(j, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// All elementary cycles' representative paths (one per strongly-connected
/// back-edge found by DFS). Good enough for reporting: any cycle yields at
/// least one path.
fn find_cycles<'a>(graph: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut cycles = Vec::new();
    for &start in graph.keys() {
        let mut stack = vec![start];
        let mut path = Vec::new();
        if dfs(graph, start, start, &mut path, &mut stack, 0) {
            path.push(start);
            cycles.push(path);
        }
    }
    // Deduplicate rotations: keep cycles whose first node is their minimum.
    cycles.retain(|c| c.first() == c.iter().min());
    cycles
}

fn dfs<'a>(
    graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    start: &'a str,
    at: &'a str,
    path: &mut Vec<&'a str>,
    visited: &mut Vec<&'a str>,
    depth: usize,
) -> bool {
    if depth > graph.len() {
        return false;
    }
    let Some(next) = graph.get(at) else {
        return false;
    };
    for &n in next {
        if n == start {
            path.push(at);
            return true;
        }
        if !visited.contains(&n) {
            visited.push(n);
            if dfs(graph, start, n, path, visited, depth + 1) {
                path.insert(0, at);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut pass = LockOrder::default();
        let file = SourceFile::parse("t.rs", src.to_string());
        let mut diags = pass.check_file(&file);
        diags.extend(pass.finish());
        diags
    }

    const STRUCT: &str = "struct S { queues: Vec<Mutex<Vec<u32>>>, table: Mutex<u32> }\n";

    #[test]
    fn discovers_classes_behind_wrappers() {
        let file = SourceFile::parse("t.rs", STRUCT.to_string());
        let classes = discover_classes(&file);
        assert!(
            classes.contains("queues") && classes.contains("table"),
            "{classes:?}"
        );
    }

    #[test]
    fn self_edge_is_flagged() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{ fn f(&self) {{\n\
                 let a = self.queues[0].lock().unwrap();\n\
                 let b = self.queues[1].lock().unwrap();\n\
             }} }}\n"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("already holding"));
    }

    #[test]
    fn cycle_across_functions_is_flagged() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{\n\
                 fn ab(&self) {{ let a = self.queues[0].lock().unwrap(); let b = self.table.lock().unwrap(); }}\n\
                 fn ba(&self) {{ let b = self.table.lock().unwrap(); let a = self.queues[0].lock().unwrap(); }}\n\
             }}\n"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("cycle"), "{diags:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{\n\
                 fn ab(&self) {{ let a = self.queues[0].lock().unwrap(); let b = self.table.lock().unwrap(); }}\n\
                 fn ab2(&self) {{ let a = self.queues[1].lock().unwrap(); let b = self.table.lock().unwrap(); }}\n\
             }}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn temporary_guard_released_at_statement_end() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{ fn f(&self) {{\n\
                 self.queues[0].lock().unwrap().push(1);\n\
                 self.queues[1].lock().unwrap().push(2);\n\
             }} }}\n"
        );
        assert!(run(&src).is_empty(), "{:?}", run(&src));
    }

    #[test]
    fn drop_releases_named_guard() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{ fn f(&self, solver: &T) {{\n\
                 let g = self.queues[0].lock().unwrap();\n\
                 drop(g);\n\
                 solver.execute();\n\
             }} }}\n"
        );
        assert!(run(&src).is_empty(), "{:?}", run(&src));
    }

    #[test]
    fn solver_call_while_locked_is_flagged() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{ fn f(&self, solver: &T) {{\n\
                 let g = self.queues[0].lock().unwrap();\n\
                 solver.execute();\n\
             }} }}\n"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("while holding"));
    }

    #[test]
    fn lock_or_poison_counts_as_acquisition() {
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{ fn f(&self) {{\n\
                 let a = lock_or_poison(&self.queues[0]);\n\
                 let b = lock_or_poison(&self.queues[1]);\n\
             }} }}\n"
        );
        let diags = run(&src);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn consumed_guard_binds_the_result_not_the_lock() {
        // `let own = …lock()….pop_front();` binds the popped value; the guard
        // is a temporary, so stealing from another stripe afterwards is fine.
        let src = format!(
            "// anet-lint: deny(lock-order)\n{STRUCT}\
             impl S {{ fn next(&self) -> Option<u32> {{\n\
                 let own = self.queues[0].lock().unwrap().pop();\n\
                 own.or_else(|| lock_or_poison(&self.queues[1]).pop())\n\
             }} }}\n"
        );
        assert!(run(&src).is_empty(), "{:?}", run(&src));
    }

    #[test]
    fn slice_typed_fields_are_classes() {
        let file = SourceFile::parse(
            "t.rs",
            "struct T { shards: Box<[Mutex<u32>]> }\n".to_string(),
        );
        assert!(discover_classes(&file).contains("shards"));
    }

    #[test]
    fn single_class_helper_calls_fall_back_to_that_class() {
        let src = "// anet-lint: deny(lock-order)\n\
             struct T { shards: Box<[Mutex<u32>]> }\n\
             impl T {{ fn two(&self) {\n\
                 let a = lock_or_poison(self.pick(0));\n\
                 let b = lock_or_poison(self.pick(1));\n\
             } }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("already holding"));
    }

    #[test]
    fn not_opted_in_files_are_skipped() {
        let src = format!(
            "{STRUCT}\
             impl S {{ fn f(&self) {{\n\
                 let a = self.queues[0].lock().unwrap();\n\
                 let b = self.queues[1].lock().unwrap();\n\
             }} }}\n"
        );
        assert!(run(&src).is_empty());
    }
}
