//! `trace-event-wildcard`: a `match` that destructures [`TraceEvent`] variants
//! must not end in a `_ =>` arm. The trace schema grows (PR 6 added
//! `WorkerExecute`/`WorkerSteal`); a wildcard means a new variant is silently
//! dropped from reports instead of being a compile error at every consumer.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::Pass;

/// See module docs.
pub struct TraceWildcard;

impl Pass for TraceWildcard {
    fn name(&self) -> &'static str {
        "trace-event-wildcard"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut k = 0usize;
        while k < file.code.len() {
            if file.code_is(k, "match") {
                if let Some((open, close)) = match_body(file, k) {
                    if mentions_trace_event(file, open, close) {
                        flag_wildcard_arms(file, open, close, &mut diags);
                    }
                    k = open; // still scan nested matches inside this body
                }
            }
            k += 1;
        }
        diags
    }
}

/// Given `match` at code index `k`, find its body braces: the first `{` at
/// parenthesis/bracket depth 0 after the scrutinee.
fn match_body(file: &SourceFile, k: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    for j in k + 1..file.code.len() {
        if file.code_is_punct(j, '(') || file.code_is_punct(j, '[') {
            depth += 1;
        } else if file.code_is_punct(j, ')') || file.code_is_punct(j, ']') {
            depth -= 1;
        } else if depth == 0 && file.code_is_punct(j, '{') {
            return Some((j, file.matching_brace(j)));
        } else if depth == 0 && file.code_is_punct(j, ';') {
            return None;
        }
    }
    None
}

/// Does the body pattern-match `TraceEvent` variants (`TraceEvent ::` inside)?
fn mentions_trace_event(file: &SourceFile, open: usize, close: usize) -> bool {
    (open + 1..close).any(|j| {
        file.code_is(j, "TraceEvent")
            && file.code_is_punct(j + 1, ':')
            && file.code_is_punct(j + 2, ':')
    })
}

/// Flag `_ =>` arms at the body's own nesting level (depth 1 relative to the
/// body `{`), skipping test regions.
fn flag_wildcard_arms(file: &SourceFile, open: usize, close: usize, diags: &mut Vec<Diagnostic>) {
    let mut depth = 0i32;
    for j in open..close {
        if file.code_is_punct(j, '{') || file.code_is_punct(j, '(') || file.code_is_punct(j, '[') {
            depth += 1;
        } else if file.code_is_punct(j, '}')
            || file.code_is_punct(j, ')')
            || file.code_is_punct(j, ']')
        {
            depth -= 1;
        } else if depth == 1
            && file.code_tok(j) == "_"
            && file.code_is_punct(j + 1, '=')
            && file.code_is_punct(j + 2, '>')
            && !file.code_in_test(j)
        {
            diags.push(
                file.diag_at_code(
                    "trace-event-wildcard",
                    j,
                    "wildcard arm in a TraceEvent match — list every variant so new \
                 events are a compile error here, not dropped data"
                        .to_string(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("t.rs", src.to_string());
        TraceWildcard.check_file(&file)
    }

    #[test]
    fn flags_wildcard_in_trace_event_match() {
        let diags = run("fn f(e: TraceEvent) {\n\
                 match e {\n\
                     TraceEvent::RoundStart { round, .. } => go(round),\n\
                     _ => {}\n\
                 }\n\
             }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn exhaustive_trace_event_match_is_clean() {
        let diags = run("fn f(e: TraceEvent) {\n\
                 match e {\n\
                     TraceEvent::RoundStart { .. } => a(),\n\
                     TraceEvent::RoundEnd { .. } => b(),\n\
                 }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unrelated_matches_may_use_wildcards() {
        let diags = run("fn f(x: u32) -> u32 { match x { 0 => 1, _ => 2 } }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nested_match_wildcards_are_not_confused() {
        // The inner match on a field is not a TraceEvent match; its wildcard is
        // fine. The outer match is exhaustive.
        let diags = run("fn f(e: TraceEvent) {\n\
                 match e {\n\
                     TraceEvent::PhaseTime { ns, .. } => match ns { 0 => a(), _ => b() },\n\
                     TraceEvent::RoundEnd { .. } => c(),\n\
                 }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn if_let_style_underscore_binding_is_not_an_arm() {
        let diags = run("fn f(e: TraceEvent) {\n\
                 match e {\n\
                     TraceEvent::RoundStart { round: _ } => a(),\n\
                     TraceEvent::RoundEnd { .. } => b(),\n\
                 }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
