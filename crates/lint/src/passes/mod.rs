//! The pass framework: a [`Pass`] sees each file, may keep cross-file state,
//! and emits [`Diagnostic`]s. [`run_passes`] drives the default set over a
//! batch of files, folds in pragma-parse errors, and applies `allow`
//! suppressions.

mod hot_path_alloc;
mod lock_order;
mod panic_path;
mod schema_version;
mod trace_wildcard;
mod unsafe_safety;

pub use hot_path_alloc::HotPathAlloc;
pub use lock_order::LockOrder;
pub use panic_path::PanicPath;
pub use schema_version::SchemaVersion;
pub use trace_wildcard::TraceWildcard;
pub use unsafe_safety::UnsafeSafety;

use crate::diag::{sort_diagnostics, Diagnostic};
use crate::source::SourceFile;

/// One lint pass.
pub trait Pass {
    /// Stable pass name, as used in `allow(<name>)` / `deny(<name>)` pragmas
    /// and rendered in diagnostics.
    fn name(&self) -> &'static str;

    /// Inspect one file, returning its diagnostics.
    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic>;

    /// Called once after every file has been seen; cross-file passes (schema
    /// version uniqueness, the lock graph) report here.
    fn finish(&mut self) -> Vec<Diagnostic> {
        Vec::new()
    }
}

/// The full default pass set, in reporting order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(HotPathAlloc),
        Box::new(LockOrder::default()),
        Box::new(PanicPath),
        Box::new(SchemaVersion::default()),
        Box::new(TraceWildcard),
        Box::new(UnsafeSafety),
    ]
}

/// Names of every shipped pass (used by the pragma validator and `--help`).
pub const PASS_NAMES: &[&str] = &[
    "hot-path-alloc",
    "lock-order",
    "panic-path",
    "schema-version-literal",
    "trace-event-wildcard",
    "unsafe-needs-safety",
];

/// Run `passes` over `files`: collect per-file and cross-file diagnostics,
/// add pragma-parse errors and unknown-pass-name pragma diagnostics, drop
/// findings covered by an `allow` pragma, and sort the rest.
pub fn run_passes(files: &[SourceFile], passes: &mut [Box<dyn Pass>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        diags.extend(file.pragma_errors.iter().cloned());
        diags.extend(validate_pragma_names(file));
        for pass in passes.iter_mut() {
            let found = pass.check_file(file);
            diags.extend(
                found
                    .into_iter()
                    .filter(|d| !file.is_suppressed(d.pass, d.line)),
            );
        }
    }
    for pass in passes.iter_mut() {
        // Cross-file findings are anchored to a line in some file; honour that
        // file's suppressions too.
        let found = pass.finish();
        diags.extend(found.into_iter().filter(|d| {
            !files
                .iter()
                .any(|f| f.path == d.file && f.is_suppressed(d.pass, d.line))
        }));
    }
    sort_diagnostics(&mut diags);
    diags
}

/// A pragma naming a pass that does not exist is a typo waiting to disable
/// enforcement — flag it.
fn validate_pragma_names(file: &SourceFile) -> Vec<Diagnostic> {
    use crate::source::PragmaKind;
    let mut diags = Vec::new();
    for pragma in &file.pragmas {
        let name = match &pragma.kind {
            PragmaKind::Allow { pass } | PragmaKind::Deny { pass } => pass.as_str(),
            PragmaKind::HotPath => continue,
        };
        if !PASS_NAMES.contains(&name) {
            let t = &file.tokens[pragma.token];
            diags.push(Diagnostic {
                pass: "pragma",
                file: file.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "pragma names unknown pass {name:?}; known passes: {}",
                    PASS_NAMES.join(", ")
                ),
            });
        }
    }
    diags
}
