//! `hot-path-alloc`: functions registered with `// anet-lint: hot-path` must
//! not allocate. The PR 3 batching backend's win is exactly that the per-round
//! loop reuses flat arenas; one stray `format!` in a refactor silently costs
//! the paper's headline number. The pass bans the allocation constructors and
//! allocating iterator/conversion methods inside registered function bodies.

use crate::diag::Diagnostic;
use crate::source::{PragmaKind, SourceFile};
use crate::Pass;

/// See module docs.
pub struct HotPathAlloc;

/// `(leading tokens…)` patterns over consecutive code tokens that mean "this
/// line allocates". Method patterns start with `.` so free functions with the
/// same name don't trip it.
const BANNED: &[(&[&str], &str)] = &[
    (&["vec", "!"], "`vec!` allocates a fresh Vec"),
    (&["format", "!"], "`format!` allocates a String"),
    (
        &["Vec", ":", ":", "new"],
        "`Vec::new` grows later — reuse an arena",
    ),
    (
        &["Vec", ":", ":", "with_capacity"],
        "`Vec::with_capacity` allocates — reuse an arena",
    ),
    (&["Box", ":", ":", "new"], "`Box::new` heap-allocates"),
    (
        &["String", ":", ":", "new"],
        "`String::new` allocates on first push",
    ),
    (&["String", ":", ":", "from"], "`String::from` allocates"),
    (&[".", "collect"], "`.collect()` allocates its container"),
    (&[".", "clone"], "`.clone()` usually deep-copies"),
    (&[".", "to_vec"], "`.to_vec()` allocates"),
    (&[".", "to_string"], "`.to_string()` allocates"),
    (&[".", "to_owned"], "`.to_owned()` allocates"),
];

impl Pass for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for pragma in &file.pragmas {
            if pragma.kind != PragmaKind::HotPath {
                continue;
            }
            match function_after(file, pragma.line) {
                Some((name, body)) => check_body(file, &name, body, &mut diags),
                None => {
                    let t = &file.tokens[pragma.token];
                    diags.push(Diagnostic {
                        pass: self.name(),
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: "hot-path pragma is not followed by a `fn` item".to_string(),
                    });
                }
            }
        }
        diags
    }
}

/// Find the first `fn` after `line` and return its name and the code-token
/// range of its body (exclusive of the braces' interiors' bounds handling:
/// `start..end` covers tokens strictly inside `{ … }`).
fn function_after(file: &SourceFile, line: u32) -> Option<(String, std::ops::Range<usize>)> {
    let start = file.code.iter().position(|&i| file.tokens[i].line > line)?;
    let fn_kw = (start..file.code.len()).find(|&k| file.code_is(k, "fn"))?;
    let name = file.code_tok(fn_kw + 1).to_string();
    // The body's `{` is the first one at parenthesis/bracket depth 0 (skips
    // default-parameter and where-clause brackets; `fn` sigs have none deeper).
    let mut depth = 0i32;
    let mut open = None;
    for k in fn_kw + 2..file.code.len() {
        if file.code_is_punct(k, '(') || file.code_is_punct(k, '[') {
            depth += 1;
        } else if file.code_is_punct(k, ')') || file.code_is_punct(k, ']') {
            depth -= 1;
        } else if depth == 0 && file.code_is_punct(k, '{') {
            open = Some(k);
            break;
        } else if depth == 0 && file.code_is_punct(k, ';') {
            return None; // declaration without a body (trait method)
        }
    }
    let open = open?;
    let close = file.matching_brace(open);
    Some((name, open + 1..close))
}

fn check_body(
    file: &SourceFile,
    fn_name: &str,
    body: std::ops::Range<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    for k in body.clone() {
        for (pattern, why) in BANNED {
            if matches_pattern(file, k, pattern)
                // Method patterns must be calls: `.clone()` not a field `.clone`.
                && (!pattern[0].starts_with('.')
                    || file.code_is_punct(k + pattern.len(), '(')
                    || file.code_is_punct(k + pattern.len(), ':'))
            {
                diags.push(file.diag_at_code(
                    "hot-path-alloc",
                    k,
                    format!("allocation in hot path `{fn_name}`: {why}"),
                ));
            }
        }
    }
}

/// Do the code tokens at `k..` spell out `pattern`?
fn matches_pattern(file: &SourceFile, k: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(j, want)| {
        let at = k + j;
        at < file.code.len()
            && if want.chars().next().is_some_and(|c| c.is_alphabetic()) {
                file.code_is(at, want)
            } else {
                file.code_is_punct(at, want.chars().next().unwrap_or(' '))
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("t.rs", src.to_string());
        HotPathAlloc.check_file(&file)
    }

    #[test]
    fn flags_allocation_in_registered_fn() {
        let diags = run("// anet-lint: hot-path\n\
             fn round(buf: &mut Vec<u32>) {\n\
                 let v = Vec::new();\n\
                 let s = format!(\"{v:?}\");\n\
                 let c = s.clone();\n\
             }\n");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("`round`")));
    }

    #[test]
    fn unregistered_fn_is_ignored() {
        let diags = run("fn cold() { let v = Vec::new(); }\n");
        assert!(diags.is_empty());
    }

    #[test]
    fn clean_hot_fn_passes() {
        let diags = run("// anet-lint: hot-path\n\
             fn round(buf: &mut [u32]) {\n\
                 for x in buf.iter_mut() { *x += 1; }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn field_named_clone_is_not_a_call() {
        let diags = run("// anet-lint: hot-path\n\
             fn round(s: &S) -> u32 { s.clone }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dangling_pragma_is_flagged() {
        let diags = run("// anet-lint: hot-path\nconst X: u32 = 1;\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("not followed by a `fn`"));
    }
}
