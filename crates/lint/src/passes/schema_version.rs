//! `schema-version-literal`: every `anet-*/v*` schema string must be defined in
//! exactly one `const` (or `static`) and referenced through it everywhere else.
//! Writer/parser pairs live in different files; duplicated literals are how a
//! version bump updates the writer and silently leaves the parser rejecting its
//! own artifacts. Cross-file by nature, so the findings land in `finish`.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;
use std::collections::BTreeMap;

/// One sighting of a schema literal.
struct Occurrence {
    file: std::path::PathBuf,
    line: u32,
    col: u32,
    is_const_def: bool,
    in_test: bool,
    suppressed: bool,
}

/// See module docs.
#[derive(Default)]
pub struct SchemaVersion {
    seen: BTreeMap<String, Vec<Occurrence>>,
}

impl Pass for SchemaVersion {
    fn name(&self) -> &'static str {
        "schema-version-literal"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        for (k, &i) in file.code.iter().enumerate() {
            let t = &file.tokens[i];
            if t.kind != (TokenKind::Str { raw: false }) && t.kind != (TokenKind::Str { raw: true })
            {
                continue;
            }
            let Some(content) = literal_content(file.tok(i)) else {
                continue;
            };
            if !is_schema_string(content) {
                continue;
            }
            let occurrence = Occurrence {
                file: file.path.clone(),
                line: t.line,
                col: t.col,
                is_const_def: is_const_definition(file, k),
                in_test: file.code_in_test(k),
                suppressed: file.is_suppressed(self.name(), t.line),
            };
            self.seen
                .entry(content.to_string())
                .or_default()
                .push(occurrence);
        }
        Vec::new()
    }

    fn finish(&mut self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for (schema, occurrences) in &self.seen {
            let defs: Vec<&Occurrence> = occurrences
                .iter()
                .filter(|o| o.is_const_def && !o.in_test)
                .collect();
            for o in occurrences {
                if o.suppressed || o.in_test {
                    continue;
                }
                if !o.is_const_def {
                    diags.push(Diagnostic {
                        pass: self.name(),
                        file: o.file.clone(),
                        line: o.line,
                        col: o.col,
                        message: format!(
                            "schema literal {schema:?} outside its const definition — \
                             reference the const so writer and parser cannot drift"
                        ),
                    });
                } else if defs.len() > 1 {
                    diags.push(Diagnostic {
                        pass: self.name(),
                        file: o.file.clone(),
                        line: o.line,
                        col: o.col,
                        message: format!(
                            "schema {schema:?} has {} const definitions — keep exactly one",
                            defs.len()
                        ),
                    });
                }
            }
        }
        diags
    }
}

/// Strip quotes/prefixes from a string token, returning its exact content, or
/// `None` for raw strings whose fences make offset math ambiguous here. Only
/// plain contents can be schema strings anyway.
fn literal_content(text: &str) -> Option<&str> {
    let body = text.strip_prefix('b').unwrap_or(text);
    if let Some(rest) = body.strip_prefix("r") {
        let hashes = rest.chars().take_while(|&c| c == '#').count();
        let rest = &rest[hashes..];
        let rest = rest.strip_prefix('"')?;
        return rest.strip_suffix(&("\"".to_string() + &"#".repeat(hashes)));
    }
    body.strip_prefix('"')?.strip_suffix('"')
}

/// Whole-string match only: `"anet-bench/v1"` is a schema literal, an error
/// message *containing* that text is not.
fn is_schema_string(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("anet-") else {
        return false;
    };
    let Some(slash) = rest.find('/') else {
        return false;
    };
    let (name, version) = rest.split_at(slash);
    let version = &version[1..];
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && version
            .strip_prefix('v')
            .is_some_and(|n| !n.is_empty() && n.chars().all(|c| c.is_ascii_digit()))
}

/// Is code token `k` the initializer of a `const`/`static`? Scan back a few
/// tokens for the keyword, stopping at statement/boundary punctuation.
fn is_const_definition(file: &SourceFile, k: usize) -> bool {
    for back in 1..=8 {
        let Some(j) = k.checked_sub(back) else { break };
        if file.code_is_punct(j, ';') || file.code_is_punct(j, '{') || file.code_is_punct(j, '}') {
            return false;
        }
        if file.code_is(j, "const") || file.code_is(j, "static") {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut pass = SchemaVersion::default();
        for (path, src) in files {
            let f = SourceFile::parse(*path, src.to_string());
            pass.check_file(&f);
        }
        pass.finish()
    }

    #[test]
    fn single_const_definition_is_clean() {
        let diags = run(&[(
            "a.rs",
            "pub const SCHEMA: &str = \"anet-bench/v1\";\nfn f() { let _ = SCHEMA; }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stray_literal_is_flagged() {
        let diags = run(&[
            ("a.rs", "pub const SCHEMA: &str = \"anet-bench/v1\";\n"),
            ("b.rs", "fn f() -> &'static str { \"anet-bench/v1\" }\n"),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].file.ends_with("b.rs"));
    }

    #[test]
    fn duplicate_consts_are_flagged() {
        let diags = run(&[
            ("a.rs", "pub const A: &str = \"anet-trace/v1\";\n"),
            ("b.rs", "pub const B: &str = \"anet-trace/v1\";\n"),
        ]);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn substrings_and_test_code_are_ignored() {
        let diags = run(&[(
            "a.rs",
            "const S: &str = \"anet-x/v2\";\n\
             fn usage() -> &'static str { \"expected anet-x/v2 artifact\" }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { assert_eq!(super::S, \"anet-x/v2\"); }\n\
             }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn schema_shape_matcher() {
        assert!(is_schema_string("anet-bench/v1"));
        assert!(is_schema_string("anet-workloads/v2"));
        assert!(!is_schema_string("anet-bench/v"));
        assert!(!is_schema_string("anet-/v1"));
        assert!(!is_schema_string("anet-bench/1"));
        assert!(!is_schema_string("see anet-bench/v1"));
        assert!(!is_schema_string("anet-bench/v1 artifact"));
    }
}
