//! `unsafe-needs-safety`: every `unsafe` keyword must be justified by a
//! `// SAFETY:` comment on its own line or the line(s) immediately above it.
//! Combined with `#![forbid(unsafe_code)]` in every crate that has no unsafe
//! today, this means new unsafe can only appear where it is already audited.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Pass;

/// See module docs.
pub struct UnsafeSafety;

impl Pass for UnsafeSafety {
    fn name(&self) -> &'static str {
        "unsafe-needs-safety"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for (k, &i) in file.code.iter().enumerate() {
            if file.tokens[i].kind != TokenKind::Ident || file.tok(i) != "unsafe" {
                continue;
            }
            let line = file.tokens[i].line;
            if !has_safety_comment(file, line) {
                diags.push(file.diag_at_code(
                    self.name(),
                    k,
                    "`unsafe` without a `// SAFETY:` comment immediately above it".to_string(),
                ));
            }
        }
        diags
    }
}

/// Is there a comment containing `SAFETY:` on `line` or on a contiguous run of
/// comment-bearing lines directly above it?
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let comment_lines: Vec<(u32, bool)> = file
        .tokens
        .iter()
        .filter(|t| t.kind.is_comment())
        .map(|t| (t.line, t.text(&file.text).contains("SAFETY:")))
        .collect();
    // Same line counts (e.g. `unsafe { ptr.read() } // SAFETY: bounds checked`).
    if comment_lines.iter().any(|&(l, hit)| l == line && hit) {
        return true;
    }
    // Walk upward while each line above carries a comment.
    let mut at = line;
    while at > 1 {
        at -= 1;
        match comment_lines.iter().rev().find(|&&(l, _)| l == at) {
            Some(&(_, true)) => return true,
            Some(&(_, false)) => continue,
            None => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("t.rs", src.to_string());
        UnsafeSafety.check_file(&file)
    }

    #[test]
    fn unsafe_without_comment_is_flagged() {
        let diags = run("fn f(p: *const u32) -> u32 { unsafe { *p } }\n");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn safety_comment_above_is_accepted() {
        let diags = run("fn f(p: *const u32) -> u32 {\n\
                 // SAFETY: caller guarantees p is valid and aligned.\n\
                 unsafe { *p }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn multi_line_safety_comment_is_accepted() {
        let diags = run("fn f(p: *const u32) -> u32 {\n\
                 // SAFETY: p comes from a live Vec with len > 0,\n\
                 // so the read is in bounds.\n\
                 unsafe { *p }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unrelated_comment_does_not_count() {
        let diags = run("fn f(p: *const u32) -> u32 {\n\
                 // fast path\n\
                 unsafe { *p }\n\
             }\n");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn string_containing_unsafe_is_ignored() {
        let diags = run("fn f() -> &'static str { \"unsafe\" }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
