//! `panic-path`: files opted in with `// anet-lint: deny(panic-path)` must not
//! panic outside tests. The service request path and the artifact parsers
//! return typed errors; an `unwrap` there turns a malformed request or a
//! truncated artifact into a worker-thread abort. Free functions named
//! `expect`/`unwrap` are fine — only method calls (a preceding `.`) and the
//! panic macro family are flagged.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::Pass;

/// See module docs.
pub struct PanicPath;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Pass for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn check_file(&mut self, file: &SourceFile) -> Vec<Diagnostic> {
        if !file.denies(self.name()) {
            return Vec::new();
        }
        let mut diags = Vec::new();
        for k in 0..file.code.len() {
            if file.code_in_test(k) {
                continue;
            }
            for m in PANIC_METHODS {
                if k > 0
                    && file.code_is_punct(k - 1, '.')
                    && file.code_is(k, m)
                    && file.code_is_punct(k + 1, '(')
                {
                    diags.push(file.diag_at_code(
                        self.name(),
                        k,
                        format!(
                            "`.{m}()` on a panic-free path — return a typed error \
                             or document the site with an allow pragma"
                        ),
                    ));
                }
            }
            for m in PANIC_MACROS {
                if file.code_is(k, m) && file.code_is_punct(k + 1, '!') {
                    diags.push(file.diag_at_code(
                        self.name(),
                        k,
                        format!("`{m}!` on a panic-free path — return a typed error instead"),
                    ));
                }
            }
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("t.rs", src.to_string());
        PanicPath.check_file(&file)
    }

    #[test]
    fn only_opted_in_files_are_checked() {
        assert!(run("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n").is_empty());
    }

    #[test]
    fn flags_methods_and_macros_in_denied_files() {
        let diags = run("// anet-lint: deny(panic-path)\n\
             fn f(x: Option<u32>) -> u32 {\n\
                 let y = x.expect(\"boom\");\n\
                 if y == 0 { panic!(\"zero\") }\n\
                 match y { 1 => unreachable!(), _ => y }\n\
             }\n");
        assert_eq!(diags.len(), 3, "{diags:?}");
    }

    #[test]
    fn free_function_named_expect_is_fine() {
        let diags = run("// anet-lint: deny(panic-path)\n\
             fn expect(b: &[u8], p: &mut usize) -> bool { *p < b.len() }\n\
             fn f(b: &[u8], p: &mut usize) -> bool { expect(b, p) }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = run("// anet-lint: deny(panic-path)\n\
             fn f() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
             }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_pragma_suppresses_via_framework() {
        // Suppression is applied by run_passes, not the pass itself; check the
        // file marks the right lines.
        let file = SourceFile::parse(
            "t.rs",
            "// anet-lint: deny(panic-path)\n\
             fn f(x: Option<u32>) -> u32 {\n\
                 // anet-lint: allow(panic-path) — checked non-empty above\n\
                 x.unwrap()\n\
             }\n"
            .to_string(),
        );
        let diags = PanicPath.check_file(&file);
        assert_eq!(diags.len(), 1);
        assert!(file.is_suppressed("panic-path", diags[0].line));
    }
}
