//! The `anet-lint` binary. Run from the workspace root:
//!
//! ```text
//! cargo run -p anet-lint                # lint every workspace crate
//! cargo run -p anet-lint -- --self-check  # verify the passes against fixtures
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics (or self-check failures), 2 usage/IO
//! error.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p anet-lint [-- --self-check]

Lints every workspace crate's src/ tree with the project-specific passes
(hot-path-alloc, lock-order, panic-path, schema-version-literal,
trace-event-wildcard, unsafe-needs-safety). See docs/LINTS.md.

  --self-check   run the passes against the known-bad/known-good fixtures
                 instead of the workspace; fail unless every bad fixture is
                 flagged and every good fixture is clean";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => lint(),
        ["--self-check"] => self_check(),
        ["--help"] | ["-h"] => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = Path::new(".");
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "anet-lint: no Cargo.toml in the current directory — run from the workspace root"
        );
        return ExitCode::from(2);
    }
    match anet_lint::lint_workspace(root) {
        Ok(diags) if diags.is_empty() => {
            println!("anet-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("anet-lint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("anet-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn self_check() -> ExitCode {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    match anet_lint::self_check(&fixtures) {
        Ok(report) if report.passed() => {
            println!("anet-lint: self-check passed ({} fixtures)", report.checked);
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for failure in &report.failures {
                eprintln!("self-check failure: {failure}");
            }
            eprintln!(
                "anet-lint: self-check FAILED ({} of {} fixtures misbehaved)",
                report.failures.len(),
                report.checked
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("anet-lint: {e}");
            ExitCode::from(2)
        }
    }
}
