//! `anet-lint`: in-tree static analysis for the workspace's load-bearing
//! invariants — the rules the compiler and clippy cannot see.
//!
//! The Gorain–Miller–Pelc elections are deterministic, so correctness here
//! rests on conventions: the batching backend's round loop must not allocate,
//! the service's striped locks must be acquired in one global order, schema
//! version strings must live in exactly one `const`, the request path must not
//! panic, and `unsafe` must carry a `// SAFETY:` audit. This crate is a
//! std-only lexer + pass framework that mechanically enforces all five, run as
//! `cargo run -p anet-lint` from the workspace root (CI does exactly that).
//!
//! See `docs/LINTS.md` for each pass's invariant, rationale and suppression
//! syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod source;

pub use diag::{sort_diagnostics, Diagnostic};
pub use passes::{default_passes, run_passes, Pass};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// Collect the workspace's lintable files under `root`: every `*.rs` that has
/// a `src` path component, skipping `target`, `.git`, and the lint fixtures.
/// Sorted, so diagnostics are stable across runs and platforms.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") && path.components().any(|c| c.as_os_str() == "src") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every workspace source file under `root` with the default passes.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let paths = collect_workspace_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push(SourceFile::load(path)?);
    }
    let mut passes = default_passes();
    Ok(run_passes(&files, &mut passes))
}

/// Lint a single file in isolation (used by the fixture self-check).
pub fn lint_one(path: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let file = SourceFile::load(path)?;
    let mut passes = default_passes();
    Ok(run_passes(std::slice::from_ref(&file), &mut passes))
}

/// Outcome of the fixture self-check: every `fixtures/bad/<pass>__*.rs` must
/// produce at least one diagnostic of the pass its filename names, and every
/// `fixtures/good/*.rs` must produce none.
pub struct SelfCheck {
    /// Number of fixture files examined.
    pub checked: usize,
    /// Human-readable descriptions of every expectation that failed.
    pub failures: Vec<String>,
}

impl SelfCheck {
    /// Did every fixture behave as its name promises?
    pub fn passed(&self) -> bool {
        self.checked > 0 && self.failures.is_empty()
    }
}

/// Run the self-check against a fixtures directory (`bad/` and `good/`
/// subdirectories). A bad fixture named `panic_path__service.rs` is expected
/// to trip the `panic-path` pass (underscores in the prefix before `__` map to
/// hyphens in the pass name).
pub fn self_check(fixtures: &Path) -> std::io::Result<SelfCheck> {
    let mut report = SelfCheck {
        checked: 0,
        failures: Vec::new(),
    };
    for path in sorted_rs_files(&fixtures.join("bad"))? {
        report.checked += 1;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Some((pass_part, _)) = stem.split_once("__") else {
            report.failures.push(format!(
                "{}: bad fixture name needs the form <pass>__<description>.rs",
                path.display()
            ));
            continue;
        };
        let expected = pass_part.replace('_', "-");
        let diags = lint_one(&path)?;
        if !diags.iter().any(|d| d.pass == expected) {
            report.failures.push(format!(
                "{}: expected a `{}` diagnostic, got {:?}",
                path.display(),
                expected,
                diags.iter().map(|d| d.pass).collect::<Vec<_>>()
            ));
        }
    }
    for path in sorted_rs_files(&fixtures.join("good"))? {
        report.checked += 1;
        let diags = lint_one(&path)?;
        if !diags.is_empty() {
            report.failures.push(format!(
                "{}: expected a clean pass, got:\n  {}",
                path.display(),
                diags
                    .iter()
                    .map(Diagnostic::render)
                    .collect::<Vec<_>>()
                    .join("\n  ")
            ));
        }
    }
    Ok(report)
}

fn sorted_rs_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    Ok(files)
}
