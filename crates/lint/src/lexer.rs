//! A lightweight Rust lexer: just enough token structure for the lint passes.
//!
//! The lexer's one job is to never mistake *text* for *code*: string contents,
//! comment contents, char literals and lifetimes must all come out as the right
//! token kind so the passes can reason about identifiers and punctuation without
//! being fooled by `"a string containing .unwrap()"` or `// a comment with vec!`.
//! It therefore handles the genuinely tricky corners of Rust's surface syntax —
//! nested block comments, raw strings with arbitrary hash fences, raw
//! identifiers, byte strings, and the `'a` lifetime vs `'a'` char-literal
//! ambiguity — while staying deliberately dumb about everything a lint pass does
//! not need (numeric suffixes, float grammar subtleties, shebangs).
//!
//! Robustness contract, enforced by the adversarial test suite: for **any**
//! input string, [`lex`] terminates, never panics, and returns tokens whose byte
//! spans are in-bounds, non-overlapping and monotonically increasing.
//! Malformed input (unterminated strings or comments, stray quotes) degrades to
//! the closest reasonable token, never to an error.

/// What a [`Token`] is. The lexer keeps comments — several passes read them
/// (pragmas, `// SAFETY:` audits); use [`TokenKind::is_comment`] to skip them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `Vec`, `r#match`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A character or byte literal (`'x'`, `'\u{1F600}'`, `b'q'`).
    Char,
    /// A string literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str {
        /// `true` for raw strings (`r…` / `br…`), whose contents have no escapes.
        raw: bool,
    },
    /// A numeric literal (integer or float, suffixes included).
    Number,
    /// A `// …` comment (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// A `/* … */` comment (nesting respected; runs to EOF if unterminated).
    BlockComment,
    /// A single punctuation character (`{`, `.`, `!`, `:`, …).
    Punct,
}

impl TokenKind {
    /// Is this a comment token (line or block)?
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: kind plus byte span and 1-based line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based character column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// The char at `pos + n` chars ahead (0 = current), if any.
    fn peek(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    /// Advance one char, maintaining line/col. Returns the char consumed.
    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// The char immediately before `pos`, if any.
    fn prev(&self) -> Option<char> {
        self.src[..self.pos].chars().next_back()
    }

    /// Consume chars while `f` holds.
    fn bump_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !f(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens (whitespace dropped, comments kept). Total, panic-free.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = scan_token(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always advance");
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    tokens
}

/// Scan one token starting at `c` (the current char of `cur`).
fn scan_token(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    match c {
        '/' if cur.peek(1) == Some('/') => {
            cur.bump_while(|c| c != '\n');
            TokenKind::LineComment
        }
        '/' if cur.peek(1) == Some('*') => {
            scan_block_comment(cur);
            TokenKind::BlockComment
        }
        '"' => {
            scan_string(cur);
            TokenKind::Str { raw: false }
        }
        '\'' => scan_quote(cur),
        'r' | 'b' if starts_literal_prefix(cur) => scan_prefixed_literal(cur),
        c if is_ident_start(c) => {
            cur.bump_while(is_ident_continue);
            TokenKind::Ident
        }
        c if c.is_ascii_digit() => {
            scan_number(cur);
            TokenKind::Number
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// Does the cursor sit on `r"`/`r#"`/`b"`/`b'`/`br"`/`br#"` (a prefixed literal)
/// rather than a plain identifier beginning with `r` or `b`? Raw *identifiers*
/// (`r#match`) are not literals and return `false`.
fn starts_literal_prefix(cur: &Cursor<'_>) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('b'), Some('\'')) | (Some('b'), Some('"')) => true,
        (Some('b'), Some('r')) => raw_fence_follows(cur, 2),
        (Some('r'), _) => raw_fence_follows(cur, 1),
        _ => false,
    }
}

/// After a raw prefix at char offset `at`, does `#*"` follow (a raw string
/// fence)? `r#ident` — hashes not followed by a quote — is a raw identifier.
fn raw_fence_follows(cur: &Cursor<'_>, at: usize) -> bool {
    let mut n = at;
    while cur.peek(n) == Some('#') {
        n += 1;
    }
    cur.peek(n) == Some('"')
}

/// Scan `r…`/`b…`/`br…` literals; the cursor sits on the prefix and
/// [`starts_literal_prefix`] already held.
fn scan_prefixed_literal(cur: &mut Cursor<'_>) -> TokenKind {
    let first = cur.bump(); // consume `r` or `b`
    match (first, cur.peek(0)) {
        (Some('b'), Some('\'')) => scan_quote(cur),
        (Some('b'), Some('"')) => {
            scan_string(cur);
            TokenKind::Str { raw: false }
        }
        (Some('b'), Some('r')) => {
            cur.bump(); // the `r` of `br`
            scan_raw_string(cur);
            TokenKind::Str { raw: true }
        }
        _ => {
            scan_raw_string(cur);
            TokenKind::Str { raw: true }
        }
    }
}

/// Scan a nested block comment; the cursor sits on the opening `/`.
/// Unterminated comments run to EOF.
fn scan_block_comment(cur: &mut Cursor<'_>) {
    cur.bump();
    cur.bump(); // `/*`
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

/// Scan a `"…"` string with escapes; the cursor sits on the opening quote.
/// Unterminated strings run to EOF.
fn scan_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening `"`
    loop {
        match cur.bump() {
            None | Some('"') => break,
            Some('\\') => {
                cur.bump(); // the escaped char, whatever it is
            }
            Some(_) => {}
        }
    }
}

/// Scan a raw string `#*"…"#*`; the cursor sits on the first `#` or the quote.
/// The fence (hash count) of the opening must be matched to close; an
/// unterminated raw string runs to EOF.
fn scan_raw_string(cur: &mut Cursor<'_>) {
    let mut fence = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        fence += 1;
    }
    if cur.peek(0) != Some('"') {
        return; // not actually a raw string; consume nothing further
    }
    cur.bump(); // opening `"`
    loop {
        match cur.bump() {
            None => break,
            Some('"') => {
                let mut seen = 0usize;
                while seen < fence && cur.peek(0) == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == fence {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

/// Disambiguate `'`: char literal (`'x'`, `'\n'`, `'\u{…}'`) vs lifetime/label
/// (`'a`, `'static`) vs stray quote. The cursor sits on the `'`.
fn scan_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // An escape can only be a char literal.
    if cur.peek(1) == Some('\\') {
        cur.bump(); // `'`
        cur.bump(); // `\`
        cur.bump(); // escaped char
        if cur.peek(0) == Some('{') {
            // `'\u{…}'`: consume to the closing brace.
            cur.bump_while(|c| c != '}' && c != '\'' && c != '\n');
            if cur.peek(0) == Some('}') {
                cur.bump();
            }
        }
        if cur.peek(0) == Some('\'') {
            cur.bump();
        }
        return TokenKind::Char;
    }
    // `'X'` with a single (possibly non-ident) char is a char literal. This also
    // correctly classifies `'a'` against the lifetime `'a`.
    if cur.peek(1).is_some() && cur.peek(1) != Some('\'') && cur.peek(2) == Some('\'') {
        cur.bump();
        cur.bump();
        cur.bump();
        return TokenKind::Char;
    }
    // `'ident` is a lifetime or loop label.
    if cur.peek(1).is_some_and(is_ident_start) {
        cur.bump(); // `'`
        cur.bump_while(is_ident_continue);
        return TokenKind::Lifetime;
    }
    // Stray quote (`''`, `'` at EOF): a punct, so the lexer always advances.
    cur.bump();
    TokenKind::Punct
}

/// Scan a numeric literal: digits, `_`, type suffixes, hex/oct/bin bodies, a
/// fractional part, and a signed exponent — but never the `..` of a range
/// expression.
fn scan_number(cur: &mut Cursor<'_>) {
    scan_digits_and_exponent(cur);
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump(); // the decimal point
        scan_digits_and_exponent(cur);
    }
}

/// Digits/suffix characters, plus `e-3`/`E+7` exponents. The sign is consumed
/// only when the run ends in `e`/`E` and digits follow — `1e - x` stays three
/// tokens.
fn scan_digits_and_exponent(cur: &mut Cursor<'_>) {
    cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
    if matches!(cur.prev(), Some('e') | Some('E'))
        && matches!(cur.peek(0), Some('+') | Some('-'))
        && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
    {
        cur.bump(); // the sign
        cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lexes_plain_code() {
        let toks = kinds("fn main() { let x = 1; }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "main".to_string()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1"));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "/* a /* nested */ b */ fn";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "fn".to_string()));
    }

    #[test]
    fn raw_strings_respect_hash_fences() {
        let src = r####"let s = r##"contains "# inside"##; x"####;
        let toks = kinds(src);
        let raw = toks
            .iter()
            .find(|(k, _)| *k == (TokenKind::Str { raw: true }))
            .expect("raw string token");
        assert!(raw.1.contains("contains"));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let c = b'q'; let r = br#"raw"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == (TokenKind::Str { raw: false }) && t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "b'q'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == (TokenKind::Str { raw: true }) && t == "br#\"raw\"#"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#match = r#type;");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        // `r` then `#` then `match` — the lexer may split the sigil, but must not
        // treat the tail as a raw string.
        assert!(idents.contains(&"let"));
        assert!(!toks.iter().any(|(k, _)| matches!(k, TokenKind::Str { .. })));
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        let toks = kinds(r#"let s = "vec![] .unwrap() /* not a comment */";"#);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokenKind::Str { .. }))
                .count(),
            1
        );
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
    }

    #[test]
    fn positions_are_one_based_and_monotone() {
        let src = "fn a() {}\n  let x = 'b';\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let let_tok = toks.iter().find(|t| t.text(src) == "let").unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 3));
        for pair in toks.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
    }
}
