//! Diagnostics: what a pass reports and how it is rendered.

use std::path::PathBuf;

/// One finding: a pass name, a `file:line:col` location, and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the pass that produced the finding (e.g. `panic-path`).
    pub pass: &'static str,
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line:col: [pass] message` — the one-line compiler-style
    /// form the binary prints and CI greps.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.pass,
            self.message
        )
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sort diagnostics for stable output: by file, then line, then column, then pass.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.pass).cmp(&(&b.file, b.line, b.col, b.pass)));
}
