//! A parsed source file: tokens plus the structure every pass needs — pragma
//! directives, suppression sites, `#[cfg(test)]` regions, and brace matching.
//!
//! ## Pragma syntax
//!
//! Directives live in plain `//` comments (never in doc comments, so
//! documentation can *show* the syntax without *activating* it):
//!
//! ```text
//! // anet-lint: allow(<pass>) — <reason>     suppress <pass> on the following statement
//! // anet-lint: deny(<pass>)                 opt this file into a scoped pass
//! // anet-lint: hot-path                     register the next `fn` as a round-loop hot path
//! ```
//!
//! `allow` requires a non-empty reason after the closing parenthesis; a bare
//! `allow(pass)` is itself a diagnostic, as is an unknown directive — typos must
//! not silently disable enforcement.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use std::path::{Path, PathBuf};

/// A recognised `anet-lint:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaKind {
    /// `allow(<pass>)` with a documented reason: suppress that pass nearby.
    Allow {
        /// The pass being suppressed.
        pass: String,
    },
    /// `deny(<pass>)`: opt the whole file into a scoped pass.
    Deny {
        /// The pass being opted into.
        pass: String,
    },
    /// `hot-path`: the next `fn` item is a registered round-loop hot path.
    HotPath,
}

/// A directive comment: its kind plus where it sits.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Which directive.
    pub kind: PragmaKind,
    /// Index of the comment token carrying it.
    pub token: usize,
    /// 1-based line of the comment.
    pub line: u32,
}

/// One source file, lexed and indexed for the passes.
pub struct SourceFile {
    /// Path the file was loaded from (repo-relative when walked by the driver).
    pub path: PathBuf,
    /// The raw text.
    pub text: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Parsed `anet-lint:` directives.
    pub pragmas: Vec<Pragma>,
    /// Diagnostics produced while parsing directives (unknown directive,
    /// missing reason). Reported under the `pragma` pass and never suppressible.
    pub pragma_errors: Vec<Diagnostic>,
    /// Byte ranges of test-only code: `#[cfg(test)] mod … { … }` bodies and
    /// `#[test] fn … { … }` bodies.
    pub test_regions: Vec<(usize, usize)>,
    /// Lines on which each `allow` pragma applies: `(pass, line)` pairs.
    suppressed: Vec<(String, u32)>,
}

impl SourceFile {
    /// Lex and index `text` as the contents of `path`.
    pub fn parse(path: impl Into<PathBuf>, text: String) -> SourceFile {
        let path = path.into();
        let tokens = lex(&text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            path,
            text,
            tokens,
            code,
            pragmas: Vec::new(),
            pragma_errors: Vec::new(),
            test_regions: Vec::new(),
            suppressed: Vec::new(),
        };
        file.scan_pragmas();
        file.scan_test_regions();
        file.compute_suppressions();
        file
    }

    /// Load and parse a file from disk.
    pub fn load(path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::parse(path, text))
    }

    /// The text of token `i`.
    pub fn tok(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// The text of the `k`-th code token.
    pub fn code_tok(&self, k: usize) -> &str {
        self.tokens[self.code[k]].text(&self.text)
    }

    /// Is the `k`-th code token the identifier `ident`?
    pub fn code_is(&self, k: usize, ident: &str) -> bool {
        k < self.code.len()
            && self.tokens[self.code[k]].kind == TokenKind::Ident
            && self.code_tok(k) == ident
    }

    /// Is the `k`-th code token the punctuation char `p`?
    pub fn code_is_punct(&self, k: usize, p: char) -> bool {
        k < self.code.len()
            && self.tokens[self.code[k]].kind == TokenKind::Punct
            && self.code_tok(k).starts_with(p)
    }

    /// A diagnostic at the `k`-th code token.
    pub fn diag_at_code(&self, pass: &'static str, k: usize, message: String) -> Diagnostic {
        let t = &self.tokens[self.code[k]];
        Diagnostic {
            pass,
            file: self.path.clone(),
            line: t.line,
            col: t.col,
            message,
        }
    }

    /// Does byte offset `at` fall inside a test-only region?
    pub fn in_test_region(&self, at: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Is the `k`-th code token inside a test-only region?
    pub fn code_in_test(&self, k: usize) -> bool {
        self.in_test_region(self.tokens[self.code[k]].start)
    }

    /// Is a diagnostic of `pass` at `line` suppressed by a nearby
    /// `allow(pass)` pragma?
    pub fn is_suppressed(&self, pass: &str, line: u32) -> bool {
        self.suppressed.iter().any(|(p, l)| p == pass && *l == line)
    }

    /// Does the file carry a `deny(<pass>)` pragma (opting it into `pass`)?
    pub fn denies(&self, pass: &str) -> bool {
        self.pragmas
            .iter()
            .any(|p| matches!(&p.kind, PragmaKind::Deny { pass: d } if d == pass))
    }

    /// Index (into `code`) of the matching `}` for the `{` at code index
    /// `open`. Returns the last code token on unbalanced input.
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for k in open..self.code.len() {
            if self.code_is_punct(k, '{') {
                depth += 1;
            } else if self.code_is_punct(k, '}') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Extract `anet-lint:` directives from plain `//` comments.
    fn scan_pragmas(&mut self) {
        let mut pragmas = Vec::new();
        let mut errors = Vec::new();
        for (i, token) in self.tokens.iter().enumerate() {
            if token.kind != TokenKind::LineComment {
                continue;
            }
            let text = token.text(&self.text);
            // Plain `//` only: `///` and `//!` are documentation.
            if text.starts_with("///") || text.starts_with("//!") {
                continue;
            }
            let body = text.trim_start_matches('/').trim();
            let Some(directive) = body.strip_prefix("anet-lint:") else {
                continue;
            };
            let directive = directive.trim();
            match parse_directive(directive) {
                Ok(kind) => pragmas.push(Pragma {
                    kind,
                    token: i,
                    line: token.line,
                }),
                Err(message) => errors.push(Diagnostic {
                    pass: "pragma",
                    file: self.path.clone(),
                    line: token.line,
                    col: token.col,
                    message,
                }),
            }
        }
        self.pragmas = pragmas;
        self.pragma_errors = errors;
    }

    /// An `allow` pragma covers its own line and the whole statement that
    /// follows — up to the `;` (or closing `}` of a block expression) at the
    /// statement's own nesting level. Statement-based rather than line-based so
    /// that a formatter wrapping `x.lock()\n.expect(…)` across lines cannot
    /// push the suppressed call out from under its pragma.
    fn compute_suppressions(&mut self) {
        let mut suppressed = Vec::new();
        for pragma in &self.pragmas {
            let PragmaKind::Allow { pass } = &pragma.kind else {
                continue;
            };
            suppressed.push((pass.clone(), pragma.line));
            let Some(first) = self
                .code
                .iter()
                .position(|&i| self.tokens[i].line > pragma.line)
            else {
                continue;
            };
            let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
            for k in first..self.code.len() {
                let t = &self.tokens[self.code[k]];
                suppressed.push((pass.clone(), t.line));
                if t.kind != TokenKind::Punct {
                    continue;
                }
                match self.text[t.start..t.end].chars().next() {
                    Some('(') => paren += 1,
                    Some(')') => paren -= 1,
                    Some('[') => bracket += 1,
                    Some(']') => bracket -= 1,
                    Some('{') => brace += 1,
                    Some('}') => {
                        brace -= 1;
                        // End of the enclosing scope, or of a block-expression
                        // statement (`match … {}` / `if … {}`) at our level.
                        if brace <= 0 && paren <= 0 && bracket <= 0 {
                            break;
                        }
                    }
                    Some(';') if paren <= 0 && bracket <= 0 && brace <= 0 => break,
                    _ => {}
                }
            }
        }
        suppressed.sort();
        suppressed.dedup();
        self.suppressed = suppressed;
    }

    /// Find `#[cfg(test)] mod … { … }` and `#[test] fn … { … }` regions.
    fn scan_test_regions(&mut self) {
        let mut regions = Vec::new();
        let mut k = 0usize;
        while k < self.code.len() {
            if let Some((body_open, attr_start)) = self.test_attr_item(k) {
                let close = self.matching_brace(body_open);
                regions.push((
                    self.tokens[self.code[attr_start]].start,
                    self.tokens[self.code[close]].end,
                ));
                k = close + 1;
            } else {
                k += 1;
            }
        }
        self.test_regions = regions;
    }

    /// If code index `k` starts `#[cfg(test)]` or `#[test]` on a braced item,
    /// return `(index of the body's '{', k)`.
    fn test_attr_item(&self, k: usize) -> Option<(usize, usize)> {
        if !self.code_is_punct(k, '#') || !self.code_is_punct(k + 1, '[') {
            return None;
        }
        let is_cfg_test = self.code_is(k + 2, "cfg")
            && self.code_is_punct(k + 3, '(')
            && self.code_is(k + 4, "test")
            && self.code_is_punct(k + 5, ')')
            && self.code_is_punct(k + 6, ']');
        let is_test = self.code_is(k + 2, "test") && self.code_is_punct(k + 3, ']');
        let mut at = if is_cfg_test {
            k + 7
        } else if is_test {
            k + 4
        } else {
            return None;
        };
        // Skip any further attributes between the test attribute and the item.
        while self.code_is_punct(at, '#') && self.code_is_punct(at + 1, '[') {
            let mut depth = 0usize;
            let mut j = at + 1;
            while j < self.code.len() {
                if self.code_is_punct(j, '[') {
                    depth += 1;
                } else if self.code_is_punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            at = j + 1;
        }
        // The guarded item must eventually open a brace: `mod name {` / `fn … {`.
        let wants_brace = self.code_is(at, "mod") || self.code_is(at, "fn");
        if !wants_brace {
            return None;
        }
        let mut j = at;
        while j < self.code.len() && !self.code_is_punct(j, '{') {
            if self.code_is_punct(j, ';') {
                return None; // `mod name;` — no inline body
            }
            j += 1;
        }
        (j < self.code.len()).then_some((j, k))
    }
}

/// Parse the text after `anet-lint:`.
fn parse_directive(directive: &str) -> Result<PragmaKind, String> {
    if directive == "hot-path"
        || directive.starts_with("hot-path ")
        || directive.starts_with("hot-path —")
    {
        return Ok(PragmaKind::HotPath);
    }
    for (name, wants_reason) in [("allow", true), ("deny", false)] {
        let Some(rest) = directive.strip_prefix(name) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return Err(format!(
                "malformed `{name}` directive: expected `{name}(<pass>)`"
            ));
        };
        let Some(close) = rest.find(')') else {
            return Err(format!("malformed `{name}` directive: missing `)`"));
        };
        let pass = rest[..close].trim().to_string();
        if pass.is_empty() {
            return Err(format!("`{name}` directive names no pass"));
        }
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        if wants_reason && reason.is_empty() {
            return Err(format!(
                "`allow({pass})` without a reason: write `// anet-lint: allow({pass}) — <why this site is exempt>`"
            ));
        }
        return Ok(if wants_reason {
            PragmaKind::Allow { pass }
        } else {
            PragmaKind::Deny { pass }
        });
    }
    Err(format!(
        "unknown anet-lint directive {directive:?}: expected `allow(<pass>) — <reason>`, `deny(<pass>)` or `hot-path`"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("test.rs", src.to_string())
    }

    #[test]
    fn pragmas_parse_and_doc_comments_do_not() {
        let f = parse(
            "// anet-lint: deny(panic-path)\n\
             /// anet-lint: allow(panic-path) — doc comments never activate\n\
             // anet-lint: hot-path\n\
             fn f() {}\n",
        );
        assert_eq!(f.pragmas.len(), 2);
        assert!(f.denies("panic-path"));
        assert!(matches!(f.pragmas[1].kind, PragmaKind::HotPath));
        assert!(f.pragma_errors.is_empty());
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let f = parse("// anet-lint: allow(panic-path)\nfn f() {}\n");
        assert_eq!(f.pragma_errors.len(), 1);
        assert!(f.pragma_errors[0].message.contains("without a reason"));
        let ok =
            parse("// anet-lint: allow(panic-path) — recovery is impossible here\nfn f() {}\n");
        assert!(ok.pragma_errors.is_empty());
        assert!(ok.is_suppressed("panic-path", 1));
        assert!(ok.is_suppressed("panic-path", 2));
        assert!(!ok.is_suppressed("panic-path", 3));
    }

    #[test]
    fn unknown_directives_are_errors() {
        let f = parse("// anet-lint: alow(panic-path) — typo\n");
        assert_eq!(f.pragma_errors.len(), 1);
        assert!(f.pragma_errors[0].message.contains("unknown"));
    }

    #[test]
    fn cfg_test_mod_bodies_are_test_regions() {
        let f = parse(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { let x = 1; }\n\
             }\n\
             fn after() {}\n",
        );
        assert_eq!(f.test_regions.len(), 1);
        let x_tok = f
            .code
            .iter()
            .position(|&i| f.tokens[i].text(&f.text) == "x")
            .unwrap();
        assert!(f.code_in_test(x_tok));
        let after = f
            .code
            .iter()
            .position(|&i| f.tokens[i].text(&f.text) == "after")
            .unwrap();
        assert!(!f.code_in_test(after));
    }

    #[test]
    fn test_fn_bodies_outside_mods_are_test_regions() {
        let f = parse("#[test]\nfn t() { oops(); }\nfn real() {}\n");
        assert_eq!(f.test_regions.len(), 1);
        let oops = f
            .code
            .iter()
            .position(|&i| f.tokens[i].text(&f.text) == "oops")
            .unwrap();
        assert!(f.code_in_test(oops));
    }

    #[test]
    fn matching_brace_handles_nesting() {
        let f = parse("fn f() { if x { y(); } }");
        let open = f
            .code
            .iter()
            .position(|&i| f.tokens[i].text(&f.text) == "{")
            .unwrap();
        let close = f.matching_brace(open);
        assert_eq!(f.code_tok(close), "}");
        assert_eq!(close, f.code.len() - 1);
    }
}
