//! Part 1 of Section 4.1: the layer graphs `L_0, …, L_k`.
//!
//! `T^h` denotes the port-labelled full `μ`-ary tree of height `h`: the root has degree
//! `μ` with ports `0..μ` towards its children, every internal node has port `μ` towards
//! its parent and ports `0..μ` towards its children, and every leaf has port 0 towards
//! its parent.
//!
//! * `L_0` is a single node `r^0_0`.
//! * `L_1` is a clique on `μ` nodes (ports `0..μ−1` per node).
//! * `L_{2j}` (`j ≥ 1`) is obtained from two copies `T^j_0`, `T^j_1` of `T^j` by
//!   *identifying* corresponding leaves (same root-to-leaf port sequence); at each
//!   merged *middle node* the edge coming from `T^j_0` gets port 0 and the edge coming
//!   from `T^j_1` gets port 1.
//! * `L_{2j+1}` (`j ≥ 1`) is obtained from two copies of `T^j` by *adding an edge*
//!   between corresponding leaves, labelled 1 at both ends; the leaves of both trees
//!   are the middle nodes.
//!
//! Nodes are addressed the paper's way: `v^m_{b,σ}` is the node reached from the root
//! `r^m_b` by the outgoing port sequence `σ` inside the tree `T^j_b`. For even layers
//! and `|σ| = j` the two addresses `(0, σ)` and `(1, σ)` refer to the same (merged)
//! node.

use anet_graph::{GraphBuilder, GraphError, NodeId, PortGraph, Result};
use std::collections::HashMap;

/// Number of nodes of `L_m` (Fact 4.1).
pub fn layer_size(mu: usize, m: usize) -> Result<u64> {
    if mu < 2 {
        return Err(GraphError::invalid("layer graphs require μ ≥ 2"));
    }
    let mu64 = mu as u64;
    Ok(match m {
        0 => 1,
        1 => mu64,
        _ => {
            let j = (m / 2) as u32;
            if m.is_multiple_of(2) {
                // (μ^{j+1} + μ^j − 2) / (μ − 1)
                (mu64.pow(j + 1) + mu64.pow(j) - 2) / (mu64 - 1)
            } else {
                // 2 (μ^{j+1} − 2... careful) — the paper: 2(μ^{j+1} − 1)/(μ − 1)
                2 * (mu64.pow(j + 1) - 1) / (mu64 - 1)
            }
        }
    })
}

/// A layer graph appended into a [`GraphBuilder`], with node addressing.
#[derive(Debug, Clone)]
pub struct AppendedLayer {
    /// Layer index `m`.
    pub m: usize,
    /// Arity parameter `μ`.
    pub mu: usize,
    /// Address map: `(b, σ) → node`. For `L_0` the only key is `(0, [])`; for `L_1` the
    /// keys are `(0, [i])` (the paper's `v^0_0(i)` naming of clique nodes).
    map: HashMap<(u8, Vec<u8>), NodeId>,
    /// The middle nodes (for `m ≥ 2`), in lexicographic σ order (side 0 for even `m`;
    /// side 0 then side 1 for odd `m`).
    pub middle: Vec<NodeId>,
    /// Every node of the layer.
    pub all: Vec<NodeId>,
}

impl AppendedLayer {
    /// Node `v^m_{b,σ}`.
    pub fn node(&self, b: u8, sigma: &[u8]) -> Option<NodeId> {
        self.map.get(&(b, sigma.to_vec())).copied().or_else(|| {
            // For even layers, the middle node can be addressed from either side.
            if self.m >= 2 && self.m.is_multiple_of(2) && sigma.len() == self.m / 2 {
                self.map.get(&(1 - b, sigma.to_vec())).copied()
            } else {
                None
            }
        })
    }

    /// Root `r^m_b` (`σ = ε`). For `L_1` this returns the clique node of index `b`
    /// (only used internally); for `L_0` the single node.
    pub fn root(&self, b: u8) -> NodeId {
        self.map[&(b, Vec::new())]
    }

    /// All addresses `(b, σ)` of tree-side `b` at depth `d` (in lexicographic σ order).
    pub fn addresses_at_depth(&self, b: u8, d: usize) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = self
            .map
            .keys()
            .filter(|(bb, s)| *bb == b && s.len() == d)
            .map(|(_, s)| s.clone())
            .collect();
        out.sort();
        out
    }

    /// The canonical list of the layer's nodes as the paper orders them in Part 4:
    /// every node written as `v^m_{b,σ}` with `b` prepended to `σ`, sorted
    /// lexicographically, duplicates (merged middle nodes) dropped keeping the first
    /// (side-0) representation. Only meaningful for the top layer `L_k`.
    pub fn border_order(&self) -> Vec<NodeId> {
        let mut keyed: Vec<(Vec<u8>, NodeId)> = self
            .map
            .iter()
            .map(|((b, s), &n)| {
                let mut key = vec![*b];
                key.extend_from_slice(s);
                (key, n)
            })
            .collect();
        keyed.sort();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (_, n) in keyed {
            if seen.insert(n) {
                out.push(n);
            }
        }
        out
    }
}

/// Append the layer graph `L_m` into the builder.
pub fn append_layer(b: &mut GraphBuilder, mu: usize, m: usize) -> Result<AppendedLayer> {
    if mu < 2 {
        return Err(GraphError::invalid("layer graphs require μ ≥ 2"));
    }
    let mut map: HashMap<(u8, Vec<u8>), NodeId> = HashMap::new();
    let mut all = Vec::new();
    let mut middle = Vec::new();

    match m {
        0 => {
            let n = b.add_node();
            map.insert((0, Vec::new()), n);
            all.push(n);
        }
        1 => {
            // Clique on μ nodes; ports 0..μ−1 using the "skip yourself" convention.
            let nodes = b.add_nodes(mu);
            for (i, &n) in nodes.iter().enumerate() {
                map.insert((0, vec![i as u8]), n);
                all.push(n);
            }
            for i in 0..mu {
                for j in (i + 1)..mu {
                    let pi = (j - 1) as u32;
                    let pj = i as u32;
                    b.add_edge(nodes[i], pi, nodes[j], pj)?;
                }
            }
        }
        _ => {
            let j = m / 2;
            let even = m.is_multiple_of(2);
            // Build the two trees T^j_0 and T^j_1 level by level.
            for side in 0..2u8 {
                let root = b.add_node();
                map.insert((side, Vec::new()), root);
                all.push(root);
                let mut frontier: Vec<Vec<u8>> = vec![Vec::new()];
                for depth in 1..=j {
                    let mut next = Vec::new();
                    for sigma in &frontier {
                        for c in 0..mu as u8 {
                            let mut child_sigma = sigma.clone();
                            child_sigma.push(c);
                            // Merged middle nodes of even layers: the side-1 leaf is the
                            // side-0 leaf.
                            if even && depth == j && side == 1 {
                                let existing = map[&(0u8, child_sigma.clone())];
                                map.insert((1, child_sigma.clone()), existing);
                                let parent = map[&(1u8, sigma.clone())];
                                // Edge from the T^j_1 parent: port c at the parent,
                                // port 1 at the merged middle node.
                                b.add_edge(parent, c as u32, existing, 1)?;
                            } else {
                                let child = b.add_node();
                                all.push(child);
                                map.insert((side, child_sigma.clone()), child);
                                let parent = map[&(side, sigma.clone())];
                                // Port at the child towards its parent:
                                //  * even layer, depth == j (a future middle node built
                                //    from side 0): port 0 (towards T^j_0);
                                //  * odd layer leaf: port 0;
                                //  * internal node: port μ.
                                let child_port = if depth == j { 0 } else { mu as u32 };
                                b.add_edge(parent, c as u32, child, child_port)?;
                            }
                            next.push(child_sigma);
                        }
                    }
                    frontier = next;
                }
            }
            // Middle nodes.
            if even {
                let mut sigmas: Vec<Vec<u8>> = map
                    .keys()
                    .filter(|(bb, s)| *bb == 0 && s.len() == j)
                    .map(|(_, s)| s.clone())
                    .collect();
                sigmas.sort();
                for s in sigmas {
                    middle.push(map[&(0u8, s)]);
                }
            } else {
                // Odd layer: add the cross edges between corresponding leaves, port 1
                // at both ends; the leaves of both trees are the middle nodes.
                let mut sigmas: Vec<Vec<u8>> = map
                    .keys()
                    .filter(|(bb, s)| *bb == 0 && s.len() == j)
                    .map(|(_, s)| s.clone())
                    .collect();
                sigmas.sort();
                for s in &sigmas {
                    let l0 = map[&(0u8, s.clone())];
                    let l1 = map[&(1u8, s.clone())];
                    b.add_edge(l0, 1, l1, 1)?;
                }
                for s in &sigmas {
                    middle.push(map[&(0u8, s.clone())]);
                }
                for s in &sigmas {
                    middle.push(map[&(1u8, s.clone())]);
                }
            }
        }
    }

    Ok(AppendedLayer {
        m,
        mu,
        map,
        middle,
        all,
    })
}

/// Build `L_m` as a standalone graph (used by the Figure 4 regeneration and the
/// Fact 4.1 tests). Returns the graph and the layer addressing (node ids refer to the
/// returned graph).
pub fn layer_graph(mu: usize, m: usize) -> Result<(PortGraph, AppendedLayer)> {
    let mut b = GraphBuilder::new();
    let layer = append_layer(&mut b, mu, m)?;
    Ok((b.build()?, layer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_sizes_match_fact_4_1() {
        // μ = 3 (the paper's Figure 4): L_0..L_5 have 1, 3, 5, 8, 17, 26 nodes.
        let expected = [1u64, 3, 5, 8, 17, 26];
        for (m, &e) in expected.iter().enumerate() {
            assert_eq!(layer_size(3, m).unwrap(), e, "μ=3, m={m}");
            let (g, _) = layer_graph(3, m).unwrap();
            assert_eq!(g.num_nodes() as u64, e, "built graph size, m={m}");
        }
        // μ = 2: 1, 2, 4, 6, 10, 14.
        let expected2 = [1u64, 2, 4, 6, 10, 14];
        for (m, &e) in expected2.iter().enumerate() {
            assert_eq!(layer_size(2, m).unwrap(), e, "μ=2, m={m}");
            let (g, _) = layer_graph(2, m).unwrap();
            assert_eq!(g.num_nodes() as u64, e);
        }
    }

    #[test]
    fn mu_must_be_at_least_two() {
        assert!(layer_size(1, 3).is_err());
        assert!(layer_graph(1, 2).is_err());
    }

    #[test]
    fn even_layer_structure() {
        let (g, l4) = layer_graph(3, 4).unwrap();
        // Roots have degree μ with ports 0..μ−1 to children.
        for side in 0..2u8 {
            assert_eq!(g.degree(l4.root(side)), 3);
        }
        // Middle nodes have degree 2 with port 0 towards T_0 and port 1 towards T_1.
        assert_eq!(l4.middle.len(), 9);
        for &mid in &l4.middle {
            assert_eq!(g.degree(mid), 2);
        }
        // The middle node reached from r_0 by (0,0) is the same as from r_1 by (0,0).
        assert_eq!(l4.node(0, &[0, 0]), l4.node(1, &[0, 0]));
        // Walking from r_0 through ports 0,0 lands on that node with far port 0;
        // from r_1 the far port is 1.
        let from0 = g
            .follow_outgoing_ports(l4.root(0), &[0, 0])
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(Some(from0), l4.node(0, &[0, 0]));
        let mid = l4.node(0, &[0, 0]).unwrap();
        assert_eq!(g.neighbor(mid, 0).unwrap().0, {
            // parent inside T_0 at depth 1
            l4.node(0, &[0]).unwrap()
        });
        assert_eq!(g.neighbor(mid, 1).unwrap().0, l4.node(1, &[0]).unwrap());
        // Diameter of L_{2j} is 2j.
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn odd_layer_structure() {
        let (g, l5) = layer_graph(3, 5).unwrap();
        // Leaves (= middle nodes) have degree 2: port 0 to the parent, port 1 across.
        assert_eq!(l5.middle.len(), 18);
        for &mid in &l5.middle {
            assert_eq!(g.degree(mid), 2);
        }
        let a = l5.node(0, &[1, 2]).unwrap();
        let b = l5.node(1, &[1, 2]).unwrap();
        assert_ne!(a, b);
        assert_eq!(g.neighbor(a, 1), Some((b, 1)));
        // Diameter of L_{2j+1} is 2j+1.
        assert_eq!(g.diameter(), 5);
    }

    #[test]
    fn l1_is_a_clique_and_l0_a_point() {
        let (g0, l0) = layer_graph(4, 0).unwrap();
        assert_eq!(g0.num_nodes(), 1);
        assert_eq!(l0.root(0), 0);

        let (g1, l1) = layer_graph(4, 1).unwrap();
        assert_eq!(g1.num_nodes(), 4);
        assert_eq!(g1.num_edges(), 6);
        for v in g1.nodes() {
            assert_eq!(g1.degree(v), 3);
        }
        assert!(l1.node(0, &[2]).is_some());
        assert!(l1.node(0, &[5]).is_none());
    }

    #[test]
    fn internal_tree_ports_follow_the_paper_convention() {
        let (g, l4) = layer_graph(3, 4).unwrap();
        // Internal (depth-1) node of T^2_0: port μ = 3 leads back to the root.
        let internal = l4.node(0, &[1]).unwrap();
        assert_eq!(g.degree(internal), 4);
        assert_eq!(g.neighbor(internal, 3).unwrap().0, l4.root(0));
        // Its children are reached through ports 0..μ−1.
        for c in 0..3u32 {
            let (child, far) = g.neighbor(internal, c).unwrap();
            assert_eq!(far, 0, "middle nodes use port 0 towards T_0");
            assert_eq!(Some(child), l4.node(0, &[1, c as u8]));
        }
    }

    #[test]
    fn border_order_is_lexicographic_and_deduplicated() {
        let (_, l4) = layer_graph(2, 4).unwrap();
        let order = l4.border_order();
        // |L_4| = 10 for μ = 2.
        assert_eq!(order.len(), 10);
        // No duplicates.
        let set: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), 10);
        // The first node is the side-0 root (key [0]); the last is the side-1 root's
        // deepest non-merged descendant… simply check the first is r_0 and that r_1
        // appears later.
        assert_eq!(order[0], l4.root(0));
        assert!(order.contains(&l4.root(1)));
    }

    #[test]
    fn addresses_at_depth_enumerates_full_levels() {
        let (_, l5) = layer_graph(2, 5).unwrap();
        assert_eq!(l5.addresses_at_depth(0, 0), vec![Vec::<u8>::new()]);
        assert_eq!(l5.addresses_at_depth(0, 1), vec![vec![0], vec![1]]);
        assert_eq!(l5.addresses_at_depth(1, 2).len(), 4);
    }
}
