//! Building Blocks 1–3 of Section 2.2.1.
//!
//! * **Building Block 1 — rooted tree `T`.** Height `k`; the root has degree `Δ − 2`
//!   with ports `1, …, Δ−2` towards its children; every other internal node has port
//!   `0` towards its parent and ports `1, …, Δ−1` towards its children; the leaves
//!   (at depth `k`) have port `0` towards their parent. `T` has
//!   `z = (Δ−2)(Δ−1)^{k−1}` leaves.
//! * **Building Block 2 — augmented trees `T_X`.** For a sequence
//!   `X = (x_1, …, x_z)` with `1 ≤ x_i ≤ Δ−1`, attach `x_i` degree-one nodes to the
//!   `i`-th leaf `ℓ_i` of `T` (leaves ordered by the lexicographic order of the port
//!   sequences from the root), with ports `1, …, x_i` at `ℓ_i` and port 0 at the new
//!   nodes.
//! * **Building Block 3 — appended paths `T_{X,1}` / `T_{X,2}`.** Append to the root a
//!   path `r, p_1, …, p_{k+1}`; the ports at `r` and `p_{k+1}` on the path are 0; for
//!   `i = 1..k` the port at `p_i` towards `p_{i−1}` is 1 and towards `p_{i+1}` is 0.
//!   `T_{X,2}` is the same except that the two port labels at `p_k` are swapped.
//!
//! Note that the root of `T` uses ports `1..Δ−2` only: ports `0` and `Δ−1` are reserved
//! for the appended path and for the attachment edge added later by the `G_{Δ,k}` and
//! `U_{Δ,k}` constructions, so a `T_X` on its own is *not* a valid port-numbered graph.
//! The functions here therefore *append into* a [`GraphBuilder`]; validation happens
//! when the enclosing construction finishes.

use anet_graph::{GraphBuilder, GraphError, NodeId, Result};

/// Number of leaves `z = (Δ−2)·(Δ−1)^{k−1}` of the tree `T` (checked arithmetic).
pub fn num_leaves(delta: usize, k: usize) -> Result<u64> {
    if delta < 3 || k < 1 {
        return Err(GraphError::invalid("tree T requires Δ ≥ 3 and k ≥ 1"));
    }
    let base = (delta - 1) as u64;
    let pow = base
        .checked_pow((k - 1) as u32)
        .ok_or_else(|| GraphError::invalid("(Δ−1)^(k−1) overflows u64"))?;
    (delta as u64 - 2)
        .checked_mul(pow)
        .ok_or_else(|| GraphError::invalid("z overflows u64"))
}

/// Number of augmented trees `|T_{Δ,k}| = (Δ−1)^z` (checked; fails for parameters where
/// the value exceeds `u64`). Fact 2.3 uses this as the size of the class `G_{Δ,k}`.
pub fn num_augmented_trees(delta: usize, k: usize) -> Result<u64> {
    let z = num_leaves(delta, k)?;
    let z32: u32 = z
        .try_into()
        .map_err(|_| GraphError::invalid("z too large"))?;
    (delta as u64 - 1)
        .checked_pow(z32)
        .ok_or_else(|| GraphError::invalid("(Δ−1)^z overflows u64"))
}

/// Base-2 logarithm of `|T_{Δ,k}|` as a float — usable even when the count itself
/// overflows. `log2 |T_{Δ,k}| = z · log2(Δ−1)`.
pub fn log2_num_augmented_trees(delta: usize, k: usize) -> Result<f64> {
    let z = num_leaves(delta, k)? as f64;
    Ok(z * ((delta - 1) as f64).log2())
}

/// The `j`-th sequence `X` (1-based) in the lexicographic order used by the paper to
/// index the trees `T_1, …, T_{|T_{Δ,k}|}`: entries range over `1..=Δ−1` and the order
/// is lexicographic with the leftmost entry most significant.
pub fn x_sequence(delta: usize, k: usize, j: u64) -> Result<Vec<u32>> {
    let z = num_leaves(delta, k)? as usize;
    let total = num_augmented_trees(delta, k)?;
    if j == 0 || j > total {
        return Err(GraphError::invalid(format!(
            "tree index {j} out of range 1..={total}"
        )));
    }
    let mut rem = j - 1;
    let base = (delta - 1) as u64;
    let mut digits = vec![1u32; z];
    for slot in (0..z).rev() {
        digits[slot] = (rem % base) as u32 + 1;
        rem /= base;
    }
    Ok(digits)
}

/// Inverse of [`x_sequence`]: the 1-based index of a sequence.
pub fn x_index(delta: usize, k: usize, x: &[u32]) -> Result<u64> {
    let z = num_leaves(delta, k)? as usize;
    if x.len() != z {
        return Err(GraphError::invalid(format!(
            "sequence has length {}, expected z = {z}",
            x.len()
        )));
    }
    let base = (delta - 1) as u64;
    let mut index = 0u64;
    for &xi in x {
        if xi < 1 || xi as usize > delta - 1 {
            return Err(GraphError::invalid(format!(
                "sequence entry {xi} outside 1..={}",
                delta - 1
            )));
        }
        index = index
            .checked_mul(base)
            .and_then(|v| v.checked_add(u64::from(xi) - 1))
            .ok_or_else(|| GraphError::invalid("index overflows u64"))?;
    }
    Ok(index + 1)
}

/// Result of appending a tree `T` (Building Block 1) into a builder.
#[derive(Debug, Clone)]
pub struct AppendedTreeT {
    /// The root `r`.
    pub root: NodeId,
    /// The `z` leaves `ℓ_1, …, ℓ_z` in lexicographic order of root-to-leaf port
    /// sequences.
    pub leaves: Vec<NodeId>,
    /// All nodes of `T` (root first).
    pub nodes: Vec<NodeId>,
}

/// Append Building Block 1 (the rooted tree `T` of height `k`) into `b`.
pub fn append_tree_t(b: &mut GraphBuilder, delta: usize, k: usize) -> Result<AppendedTreeT> {
    if delta < 3 || k < 1 {
        return Err(GraphError::invalid("tree T requires Δ ≥ 3 and k ≥ 1"));
    }
    let root = b.add_node();
    let mut nodes = vec![root];
    let mut leaves = Vec::new();
    // Depth-first in increasing port order yields the leaves in lexicographic order of
    // their port sequences.
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    // Root's children use ports 1..=Δ−2.
    for port in (1..=delta as u32 - 2).rev() {
        stack.push((root, port as usize));
    }
    // The stack holds (parent, parent_port) pairs to expand; we also need the depth.
    // Recompute depth from a side table.
    let mut depth_of = std::collections::HashMap::new();
    depth_of.insert(root, 0usize);
    while let Some((parent, pport)) = stack.pop() {
        let child = b.add_node();
        nodes.push(child);
        let child_depth = depth_of[&parent] + 1;
        depth_of.insert(child, child_depth);
        // Port 0 at the child towards its parent.
        b.add_edge(parent, pport as u32, child, 0)?;
        if child_depth == k {
            leaves.push(child);
        } else {
            for port in (1..=delta as u32 - 1).rev() {
                stack.push((child, port as usize));
            }
        }
    }
    debug_assert_eq!(leaves.len() as u64, num_leaves(delta, k)?);
    Ok(AppendedTreeT {
        root,
        leaves,
        nodes,
    })
}

/// Result of appending an augmented tree `T_X` (Building Block 2).
#[derive(Debug, Clone)]
pub struct AppendedTreeX {
    /// The root `r`.
    pub root: NodeId,
    /// The `z` leaves of the underlying `T`, in lexicographic order.
    pub t_leaves: Vec<NodeId>,
    /// The degree-one nodes attached to each leaf: `pendants[i]` are the `x_i` children
    /// of `ℓ_i`.
    pub pendants: Vec<Vec<NodeId>>,
    /// All nodes of `T_X`.
    pub nodes: Vec<NodeId>,
}

/// Append Building Block 2 (`T_X`) for the sequence `x`.
pub fn append_tree_x(
    b: &mut GraphBuilder,
    delta: usize,
    k: usize,
    x: &[u32],
) -> Result<AppendedTreeX> {
    let z = num_leaves(delta, k)? as usize;
    if x.len() != z {
        return Err(GraphError::invalid(format!(
            "sequence X has length {}, expected z = {z}",
            x.len()
        )));
    }
    let t = append_tree_t(b, delta, k)?;
    let mut nodes = t.nodes.clone();
    let mut pendants = Vec::with_capacity(z);
    for (i, &leaf) in t.leaves.iter().enumerate() {
        let xi = x[i];
        if xi < 1 || xi as usize > delta - 1 {
            return Err(GraphError::invalid(format!(
                "x_{} = {xi} outside 1..={}",
                i + 1,
                delta - 1
            )));
        }
        let mut children = Vec::with_capacity(xi as usize);
        for port in 1..=xi {
            let c = b.add_node();
            nodes.push(c);
            b.add_edge(leaf, port, c, 0)?;
            children.push(c);
        }
        pendants.push(children);
    }
    Ok(AppendedTreeX {
        root: t.root,
        t_leaves: t.leaves,
        pendants,
        nodes,
    })
}

/// Which of the two appended-path variants of Building Block 3 to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathVariant {
    /// `T_{X,1}` — the port at `p_k` towards `p_{k−1}` is 1 and towards `p_{k+1}` is 0.
    One,
    /// `T_{X,2}` — the two port labels at `p_k` are swapped.
    Two,
}

impl PathVariant {
    /// The paper's numeric name of the variant (`b ∈ {1, 2}`).
    pub fn as_u8(self) -> u8 {
        match self {
            PathVariant::One => 1,
            PathVariant::Two => 2,
        }
    }

    /// Variant from the paper's numeric name.
    pub fn from_u8(b: u8) -> Option<PathVariant> {
        match b {
            1 => Some(PathVariant::One),
            2 => Some(PathVariant::Two),
            _ => None,
        }
    }
}

/// Result of appending a tree `T_{X,b}` (Building Block 3).
#[derive(Debug, Clone)]
pub struct AppendedTreeXb {
    /// The root `r` (shared with the underlying `T_X`).
    pub root: NodeId,
    /// The underlying augmented tree.
    pub tree_x: AppendedTreeX,
    /// The appended path nodes `p_1, …, p_{k+1}` in order.
    pub path: Vec<NodeId>,
    /// All nodes.
    pub nodes: Vec<NodeId>,
}

/// Append Building Block 3 (`T_{X,1}` or `T_{X,2}`).
pub fn append_tree_xb(
    b: &mut GraphBuilder,
    delta: usize,
    k: usize,
    x: &[u32],
    variant: PathVariant,
) -> Result<AppendedTreeXb> {
    let tree_x = append_tree_x(b, delta, k, x)?;
    let mut nodes = tree_x.nodes.clone();
    let mut path = Vec::with_capacity(k + 1);
    // p_1 … p_{k+1}; p_0 = root.
    let mut prev = tree_x.root;
    for i in 1..=k + 1 {
        let p = b.add_node();
        nodes.push(p);
        path.push(p);
        // Port at the previous node towards p.
        let prev_port = if i == 1 {
            0 // at the root the path port is 0
        } else if i - 1 == k {
            // previous node is p_k: its forward port is 0 in T_{X,1} but 1 in T_{X,2}
            match variant {
                PathVariant::One => 0,
                PathVariant::Two => 1,
            }
        } else {
            0 // interior p_i: forward port 0
        };
        // Port at p towards prev.
        let p_port = if i == k + 1 {
            0 // p_{k+1} has a single port 0
        } else if i == k {
            // p_k: backward port is 1 in T_{X,1}, 0 in T_{X,2}
            match variant {
                PathVariant::One => 1,
                PathVariant::Two => 0,
            }
        } else {
            1 // interior p_i: backward port 1
        };
        b.add_edge(prev, prev_port, p, p_port)?;
        prev = p;
    }
    Ok(AppendedTreeXb {
        root: tree_x.root,
        tree_x,
        path,
        nodes,
    })
}

/// Number of nodes of `T_{X,b}`: `|T| + Σx_i + (k+1)` where
/// `|T| = 1 + (Δ−2)·((Δ−1)^k − 1)/(Δ−2) = 1 + (Δ−2)(1 + (Δ−1) + … + (Δ−1)^{k−1})`.
pub fn tree_xb_size(delta: usize, k: usize, x: &[u32]) -> Result<usize> {
    let _ = num_leaves(delta, k)?;
    // Nodes of T: root + (Δ−2)·Σ_{d=0}^{k−1} (Δ−1)^d.
    let mut internal_levels = 0u64;
    for d in 0..k {
        internal_levels += ((delta - 1) as u64).pow(d as u32);
    }
    let t_size = 1 + (delta as u64 - 2) * internal_levels;
    let pendant: u64 = x.iter().map(|&v| u64::from(v)).sum();
    Ok((t_size + pendant + (k as u64 + 1)) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Embed a tree fragment into a valid graph by completing the root's port set:
    /// the fragments deliberately leave some root ports unused (port 0 before the path
    /// is appended, port Δ−1 until the enclosing construction attaches the root), so we
    /// hang a throwaway pendant node on each listed free root port and let `build()`
    /// validate everything else.
    fn finish(mut b: GraphBuilder, root: NodeId, free_root_ports: &[u32]) -> anet_graph::PortGraph {
        for &p in free_root_ports {
            let extra = b.add_node();
            b.add_edge(root, p, extra, 0).unwrap();
        }
        b.build().unwrap()
    }

    /// Free root ports of a bare `T` / `T_X` fragment: 0 (appended path) and Δ−1
    /// (attachment edge added by the enclosing construction).
    fn tx_free_ports(delta: usize) -> Vec<u32> {
        vec![0, delta as u32 - 1]
    }

    /// Free root ports of a `T_{X,b}` fragment: only Δ−1.
    fn txb_free_ports(delta: usize) -> Vec<u32> {
        vec![delta as u32 - 1]
    }

    #[test]
    fn leaf_and_tree_counts_match_fact_2_3() {
        assert_eq!(num_leaves(4, 1).unwrap(), 2);
        assert_eq!(num_leaves(4, 2).unwrap(), 6);
        assert_eq!(num_leaves(5, 2).unwrap(), 12);
        assert_eq!(num_leaves(3, 3).unwrap(), 4);
        assert_eq!(num_augmented_trees(4, 1).unwrap(), 9);
        assert_eq!(num_augmented_trees(4, 2).unwrap(), 729);
        assert_eq!(num_augmented_trees(5, 1).unwrap(), 64);
        // log2 form agrees where both are computable.
        let log2 = log2_num_augmented_trees(4, 2).unwrap();
        assert!((log2 - 729f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn parameters_are_validated() {
        assert!(num_leaves(2, 1).is_err());
        assert!(num_leaves(4, 0).is_err());
        assert!(x_sequence(4, 1, 0).is_err());
        assert!(x_sequence(4, 1, 10).is_err());
        assert!(x_index(4, 1, &[1]).is_err());
        assert!(x_index(4, 1, &[1, 7]).is_err());
    }

    #[test]
    fn x_sequence_enumeration_is_lexicographic_and_invertible() {
        // Δ=4, k=1: z=2, entries in 1..=3, 9 sequences.
        let all: Vec<Vec<u32>> = (1..=9).map(|j| x_sequence(4, 1, j).unwrap()).collect();
        assert_eq!(all[0], vec![1, 1]);
        assert_eq!(all[1], vec![1, 2]);
        assert_eq!(all[2], vec![1, 3]);
        assert_eq!(all[3], vec![2, 1]);
        assert_eq!(all[8], vec![3, 3]);
        for w in all.windows(2) {
            assert!(w[0] < w[1], "lexicographic order");
        }
        for (j, x) in all.iter().enumerate() {
            assert_eq!(x_index(4, 1, x).unwrap(), j as u64 + 1);
        }
    }

    #[test]
    fn tree_t_shape_and_ports() {
        let mut b = GraphBuilder::new();
        let t = append_tree_t(&mut b, 4, 2).unwrap();
        // z = 6 leaves; |T| = 1 + 2·(1 + 3) = 9 nodes.
        assert_eq!(t.leaves.len(), 6);
        assert_eq!(t.nodes.len(), 9);
        let g = finish(b, t.root, &tx_free_ports(4));
        // Root: children on ports 1, 2 plus finishing pendants on ports 0 and 3.
        assert_eq!(g.degree(t.root), 4);
        // Internal nodes: port 0 to parent, 1..=3 to children → degree 4 = Δ.
        let (child, _) = g.neighbor(t.root, 1).unwrap();
        assert_eq!(g.degree(child), 4);
        assert_eq!(g.neighbor(child, 0).unwrap().0, t.root);
        // Leaves have port 0 to their parent and degree 1 here.
        for &leaf in &t.leaves {
            assert_eq!(g.degree(leaf), 1);
        }
    }

    #[test]
    fn tree_t_leaves_are_in_lexicographic_port_order() {
        let mut b = GraphBuilder::new();
        let t = append_tree_t(&mut b, 4, 2).unwrap();
        let g = finish(b, t.root, &tx_free_ports(4));
        // Recover each leaf's port sequence from the root and check sorted order.
        let seqs: Vec<Vec<u32>> = t
            .leaves
            .iter()
            .map(|&leaf| {
                let path = g.shortest_path(t.root, leaf);
                g.outgoing_ports_of_path(&path)
            })
            .collect();
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "{:?} vs {:?}", w[0], w[1]);
        }
        assert_eq!(seqs[0], vec![1, 1]);
        assert_eq!(seqs[5], vec![2, 3]);
    }

    #[test]
    fn tree_x_attaches_the_right_number_of_pendants() {
        let x = vec![1, 2, 3, 3, 2, 2];
        let mut b = GraphBuilder::new();
        let tx = append_tree_x(&mut b, 4, 2, &x).unwrap();
        for (i, children) in tx.pendants.iter().enumerate() {
            assert_eq!(children.len(), x[i] as usize);
        }
        let g = finish(b, tx.root, &tx_free_ports(4));
        for (i, &leaf) in tx.t_leaves.iter().enumerate() {
            // Leaf degree = 1 (parent) + x_i (pendants).
            assert_eq!(g.degree(leaf), 1 + x[i] as usize);
            // The pendant attached via port 1 exists, via port x_i exists.
            assert!(g.neighbor(leaf, 1).is_some());
            assert!(g.neighbor(leaf, x[i]).is_some());
        }
        assert_eq!(tx.nodes.len(), 9 + x.iter().sum::<u32>() as usize);
    }

    #[test]
    fn tree_x_rejects_bad_sequences() {
        let mut b = GraphBuilder::new();
        assert!(append_tree_x(&mut b, 4, 2, &[1, 2]).is_err());
        let mut b = GraphBuilder::new();
        assert!(append_tree_x(&mut b, 4, 1, &[0, 1]).is_err());
        let mut b = GraphBuilder::new();
        assert!(append_tree_x(&mut b, 4, 1, &[4, 1]).is_err());
    }

    #[test]
    fn appended_path_ports_match_variant_one() {
        let x = vec![1, 2];
        let mut b = GraphBuilder::new();
        let t1 = append_tree_xb(&mut b, 4, 1, &x, PathVariant::One).unwrap();
        let g = finish(b, t1.root, &txb_free_ports(4));
        let k = 1;
        assert_eq!(t1.path.len(), k + 1);
        // Root --(0 / 1)--> p_1  [p_1 = p_k: backward port 1 in variant One]
        let p1 = t1.path[0];
        assert_eq!(g.neighbor(t1.root, 0), Some((p1, 1)));
        // p_k --(0 / 0)--> p_{k+1}.
        let p2 = t1.path[1];
        assert_eq!(g.neighbor(p1, 0), Some((p2, 0)));
        assert_eq!(g.degree(p2), 1);
    }

    #[test]
    fn appended_path_ports_match_variant_two() {
        let x = vec![1, 2];
        let mut b = GraphBuilder::new();
        let t2 = append_tree_xb(&mut b, 4, 1, &x, PathVariant::Two).unwrap();
        let g = finish(b, t2.root, &txb_free_ports(4));
        let p1 = t2.path[0];
        let p2 = t2.path[1];
        // In variant Two, the ports at p_k are swapped: backward 0, forward 1.
        assert_eq!(g.neighbor(t2.root, 0), Some((p1, 0)));
        assert_eq!(g.neighbor(p1, 1), Some((p2, 0)));
    }

    #[test]
    fn variant_one_and_two_differ_only_at_p_k() {
        // For k = 2 the interior node p_1 must look the same in both variants.
        let x = vec![1, 2, 3, 3, 2, 2];
        let mut b1 = GraphBuilder::new();
        let t1 = append_tree_xb(&mut b1, 4, 2, &x, PathVariant::One).unwrap();
        let g1 = finish(b1, t1.root, &txb_free_ports(4));
        let mut b2 = GraphBuilder::new();
        let t2 = append_tree_xb(&mut b2, 4, 2, &x, PathVariant::Two).unwrap();
        let g2 = finish(b2, t2.root, &txb_free_ports(4));

        // p_1 interior: ports 1 back, 0 forward in both variants.
        assert_eq!(g1.neighbor(t1.path[0], 1).unwrap().0, t1.root);
        assert_eq!(g2.neighbor(t2.path[0], 1).unwrap().0, t2.root);
        // p_2 = p_k differs: in variant One its port 1 goes back to p_1, in variant Two
        // its port 0 goes back to p_1.
        assert_eq!(g1.neighbor(t1.path[1], 1).unwrap().0, t1.path[0]);
        assert_eq!(g2.neighbor(t2.path[1], 0).unwrap().0, t2.path[0]);
    }

    #[test]
    fn size_formula_matches_construction() {
        for (delta, k, x) in [
            (4usize, 1usize, vec![1u32, 3]),
            (4, 2, vec![1, 2, 3, 3, 2, 2]),
            (5, 1, vec![2, 4, 1]),
        ] {
            let mut b = GraphBuilder::new();
            let t = append_tree_xb(&mut b, delta, k, &x, PathVariant::One).unwrap();
            assert_eq!(t.nodes.len(), tree_xb_size(delta, k, &x).unwrap());
        }
    }

    #[test]
    fn path_variant_round_trip() {
        assert_eq!(PathVariant::from_u8(1), Some(PathVariant::One));
        assert_eq!(PathVariant::from_u8(2), Some(PathVariant::Two));
        assert_eq!(PathVariant::from_u8(3), None);
        assert_eq!(PathVariant::One.as_u8(), 1);
        assert_eq!(PathVariant::Two.as_u8(), 2);
    }
}
