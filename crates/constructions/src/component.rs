//! Parts 2 and 3 of Section 4.1: the component graph `H` and the gadget `Ĥ`.
//!
//! The component `H` is the disjoint union of the layer graphs
//! `L_0, L_1, …, L_{k−1}` together with **two** copies of `L_k` (`L_{k,1}`, `L_{k,2}`),
//! joined by inter-layer edges (Part 2 of the construction, quoted rule by rule in the
//! code below). The gadget `Ĥ` (Part 3) consists of four copies of `H` — called left,
//! top, right and bottom — whose `r^0_0` nodes are merged into a single node `ρ` of
//! degree `4μ`, the port blocks at `ρ` being `0..μ` (left), `μ..2μ` (top), `2μ..3μ`
//! (right) and `3μ..4μ` (bottom).

use crate::layers::{append_layer, AppendedLayer};
use anet_graph::{GraphBuilder, GraphError, NodeId, Result};

/// Identifier of the four components of a gadget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// `H_L` — ports `0..μ` at `ρ`.
    Left,
    /// `H_T` — ports `μ..2μ` at `ρ`.
    Top,
    /// `H_R` — ports `2μ..3μ` at `ρ`.
    Right,
    /// `H_B` — ports `3μ..4μ` at `ρ`.
    Bottom,
}

impl Side {
    /// All four sides in the fixed order L, T, R, B.
    pub const ALL: [Side; 4] = [Side::Left, Side::Top, Side::Right, Side::Bottom];

    /// Index 0..4 of the side (also the port-block index at `ρ`).
    pub fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Top => 1,
            Side::Right => 2,
            Side::Bottom => 3,
        }
    }

    /// One-letter name used in labels.
    pub fn letter(self) -> &'static str {
        match self {
            Side::Left => "L",
            Side::Top => "T",
            Side::Right => "R",
            Side::Bottom => "B",
        }
    }
}

/// A component `H` appended into a builder.
///
/// When the component is part of a gadget, its `L_0` node is the shared `ρ` (created by
/// the caller); otherwise a fresh `r^0_0` node is created.
#[derive(Debug, Clone)]
pub struct ComponentH {
    /// Arity parameter `μ`.
    pub mu: usize,
    /// Depth parameter `k`.
    pub k: usize,
    /// The `L_0` node (`r^0_0`, or the shared `ρ`).
    pub r00: NodeId,
    /// Layers `L_1 … L_{k−1}` (index 0 holds `L_1`).
    pub layers: Vec<AppendedLayer>,
    /// The two copies of the top layer: `L_{k,1}` and `L_{k,2}`.
    pub top: [AppendedLayer; 2],
    /// Border nodes `w_{q,c}`: `border[c−1][q−1]` is `w_{q,c}` (Part 4 ordering).
    pub border: [Vec<NodeId>; 2],
}

impl ComponentH {
    /// `z`, the number of nodes of `L_k` (the number of border indices `q`).
    pub fn z(&self) -> usize {
        self.border[0].len()
    }

    /// Border node `w_{q,c}` (`q` 1-based, `c ∈ {1, 2}`).
    pub fn w(&self, q: usize, c: u8) -> NodeId {
        self.border[(c - 1) as usize][q - 1]
    }

    /// A layer handle: `layer(0)` is not available (use `r00`); `layer(m)` for
    /// `1 ≤ m ≤ k−1`; the two top copies via [`ComponentH::top`].
    pub fn layer(&self, m: usize) -> &AppendedLayer {
        assert!(m >= 1 && m < self.k, "layer index out of range");
        &self.layers[m - 1]
    }

    /// Every node of the component (including `r00`).
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut out = vec![self.r00];
        for l in &self.layers {
            out.extend_from_slice(&l.all);
        }
        for t in &self.top {
            out.extend_from_slice(&t.all);
        }
        out
    }
}

/// Append a component `H` into the builder. If `shared_l0` is `Some((rho, offset))`,
/// the component's `L_0` node is the existing node `rho` and the `L_0`–`L_1` edges use
/// ports `offset..offset+μ` at `rho` (this is how the gadget shares `ρ` between its
/// four components); otherwise a fresh `r^0_0` is created and ports `0..μ` are used.
pub fn append_component_h(
    b: &mut GraphBuilder,
    mu: usize,
    k: usize,
    shared_l0: Option<(NodeId, u32)>,
) -> Result<ComponentH> {
    if mu < 2 {
        return Err(GraphError::invalid("component H requires μ ≥ 2"));
    }
    if k < 4 {
        return Err(GraphError::invalid("component H requires k ≥ 4"));
    }
    let (r00, rho_offset) = match shared_l0 {
        Some((rho, offset)) => (rho, offset),
        None => (b.add_node(), 0),
    };

    // Layers L_1 … L_{k−1}.
    let mut layers = Vec::with_capacity(k - 1);
    for m in 1..k {
        layers.push(append_layer(b, mu, m)?);
    }
    // Two copies of L_k.
    let top1 = append_layer(b, mu, k)?;
    let top2 = append_layer(b, mu, k)?;

    // --- Edges between L_0 and L_1. -------------------------------------------------
    // "For each node v ∈ L1, add an edge {r00, v}. Label the ports at r00 using
    //  0, …, μ−1, and label the newly-created port at each node in L1 by μ−1."
    let l1 = &layers[0];
    for i in 0..mu as u8 {
        let v = l1.node(0, &[i]).expect("L1 node");
        b.add_edge(r00, rho_offset + u32::from(i), v, mu as u32 - 1)?;
    }

    // --- Edges between L_1 and L_2. -------------------------------------------------
    // "For each i ∈ 0, …, μ−1, add an edge between v00(i) and v20(i) [port μ at the L1
    //  node, port 2 at the L2 node]. Next, add an edge connecting v00(0) to r20 [ports
    //  μ+1 / μ], and an edge connecting v00(μ−1) to r21 [ports μ+1 / μ]."
    {
        let l2 = &layers[1];
        for i in 0..mu as u8 {
            let v1 = l1.node(0, &[i]).expect("L1 node");
            let v2 = l2.node(0, &[i]).expect("L2 middle node");
            b.add_edge(v1, mu as u32, v2, 2)?;
        }
        let first = l1.node(0, &[0]).expect("L1 node 0");
        let last = l1.node(0, &[mu as u8 - 1]).expect("L1 node μ−1");
        b.add_edge(first, mu as u32 + 1, l2.root(0), mu as u32)?;
        b.add_edge(last, mu as u32 + 1, l2.root(1), mu as u32)?;
    }

    // --- Edges between L_m and L_{m+1} for 2 ≤ m ≤ k−1. ------------------------------
    for m in 2..k {
        let is_last = m == k - 1;
        // Split the borrow: the lower layer is layers[m−1]; the upper layer is
        // layers[m] for m < k−1, or the two top copies for m = k−1.
        if !is_last {
            let (lower_slice, upper_slice) = layers.split_at(m);
            let lower = &lower_slice[m - 1];
            let upper = &upper_slice[0];
            connect_layers(b, mu, m, lower, upper, false)?;
        } else {
            let lower = &layers[m - 1];
            connect_layers(b, mu, m, lower, &top1, false)?;
            connect_layers(b, mu, m, lower, &top2, true)?;
        }
    }

    // Border node ordering (Part 4): the nodes of L_k written as v^k_{b,σ}, ordered by
    // the sequence (b, σ) lexicographically, duplicates dropped.
    let border1 = top1.border_order();
    let border2 = top2.border_order();
    debug_assert_eq!(border1.len(), border2.len());

    Ok(ComponentH {
        mu,
        k,
        r00,
        layers,
        top: [top1, top2],
        border: [border1, border2],
    })
}

/// Add the inter-layer edges between `L_m` (`lower`) and `L_{m+1}` (`upper`) for
/// `2 ≤ m ≤ k−1`, following Part 2 of the construction. When `second_copy` is true
/// (the `L_{k−1}`–`L_{k,2}` connection), the port used at every `L_{k−1}` endpoint is
/// its next free port ("increase the values of port labels used at nodes in L_{k−1} so
/// that they do not conflict"), while the ports at the `L_k` side stay as in the rule.
fn connect_layers(
    b: &mut GraphBuilder,
    mu: usize,
    m: usize,
    lower: &AppendedLayer,
    upper: &AppendedLayer,
    second_copy: bool,
) -> Result<()> {
    let mu32 = mu as u32;
    let lower_port = |b: &GraphBuilder, node: NodeId, standard: u32| -> u32 {
        if second_copy {
            b.next_free_port(node)
        } else {
            standard
        }
    };

    // Roots: r^m_b — r^{m+1}_b with ports μ+1 (at L_m) and μ (at L_{m+1}).
    for side in 0..2u8 {
        let lo = lower.root(side);
        let up = upper.root(side);
        let p = lower_port(b, lo, mu32 + 1);
        b.add_edge(lo, p, up, mu32)?;
    }

    // Non-middle, non-root nodes: v^m_{b,σ} — v^{m+1}_{b,σ} for 1 ≤ |σ| < ⌊m/2⌋, with
    // ports μ+2 (at L_m) and μ+1 (at L_{m+1}).
    for side in 0..2u8 {
        for depth in 1..(m / 2) {
            for sigma in lower.addresses_at_depth(side, depth) {
                let lo = lower.node(side, &sigma).expect("lower node");
                let up = upper.node(side, &sigma).expect("upper node");
                let p = lower_port(b, lo, mu32 + 2);
                b.add_edge(lo, p, up, mu32 + 1)?;
            }
        }
    }

    if m.is_multiple_of(2) {
        // Case 1: m even. Each middle node of L_m (|σ| = m/2) is connected to its two
        // corresponding middle nodes of L_{m+1}: ports 3 and 4 if m = 2, else 4 and 5,
        // at the L_m node; port 2 at both L_{m+1} nodes.
        let (pa, pb) = if m == 2 { (3u32, 4u32) } else { (4, 5) };
        for sigma in lower.addresses_at_depth(0, m / 2) {
            let lo = lower.node(0, &sigma).expect("middle node");
            let up0 = upper.node(0, &sigma).expect("upper middle 0");
            let up1 = upper.node(1, &sigma).expect("upper middle 1");
            let p = lower_port(b, lo, pa);
            b.add_edge(lo, p, up0, 2)?;
            let p = lower_port(b, lo, pb);
            b.add_edge(lo, p, up1, 2)?;
        }
    } else {
        // Case 2: m odd. Each middle node of L_m (|σ| = (m−1)/2, on each side) is
        // connected to its corresponding node of L_{m+1} (ports 3 / μ+1) and to the μ
        // middle nodes of L_{m+1} below it (ports 4+i at the L_m node; port 2 at the
        // target when coming from side 0, port 3 when coming from side 1).
        for side in 0..2u8 {
            for sigma in lower.addresses_at_depth(side, (m - 1) / 2) {
                let lo = lower.node(side, &sigma).expect("odd middle node");
                let up_same = upper.node(side, &sigma).expect("upper same-σ node");
                let p = lower_port(b, lo, 3);
                b.add_edge(lo, p, up_same, mu32 + 1)?;
                for i in 0..mu as u8 {
                    let mut deeper = sigma.clone();
                    deeper.push(i);
                    let target = upper.node(side, &deeper).expect("upper middle");
                    let p = lower_port(b, lo, 4 + u32::from(i));
                    let target_port = if side == 0 { 2 } else { 3 };
                    b.add_edge(lo, p, target, target_port)?;
                }
            }
        }
    }
    Ok(())
}

/// A gadget `Ĥ` appended into a builder.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// The merged centre node `ρ` (degree `4μ`).
    pub rho: NodeId,
    /// The four components in the order L, T, R, B.
    pub components: [ComponentH; 4],
}

impl Gadget {
    /// The component on a given side.
    pub fn component(&self, side: Side) -> &ComponentH {
        &self.components[side.index()]
    }

    /// Border node `w_{q,c}` of the component on `side`.
    pub fn w(&self, side: Side, q: usize, c: u8) -> NodeId {
        self.component(side).w(q, c)
    }
}

/// Append a gadget `Ĥ` (Part 3 of the construction) into the builder.
pub fn append_gadget(b: &mut GraphBuilder, mu: usize, k: usize) -> Result<Gadget> {
    let rho = b.add_node();
    let mut components = Vec::with_capacity(4);
    for side in Side::ALL {
        let offset = (side.index() * mu) as u32;
        components.push(append_component_h(b, mu, k, Some((rho, offset)))?);
    }
    let components: [ComponentH; 4] = components
        .try_into()
        .map_err(|_| GraphError::invalid("internal error: expected four components"))?;
    Ok(Gadget { rho, components })
}

/// Build a standalone component `H` (used by tests and the Figure 5–7 regeneration).
pub fn component_h(mu: usize, k: usize) -> Result<(anet_graph::PortGraph, ComponentH)> {
    let mut b = GraphBuilder::new();
    let h = append_component_h(&mut b, mu, k, None)?;
    Ok((b.build()?, h))
}

/// Build a standalone gadget `Ĥ` (Figure 8).
pub fn gadget(mu: usize, k: usize) -> Result<(anet_graph::PortGraph, Gadget)> {
    let mut b = GraphBuilder::new();
    let g = append_gadget(&mut b, mu, k)?;
    Ok((b.build()?, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::layer_size;

    #[test]
    fn component_builds_and_has_the_right_size() {
        let (g, h) = component_h(2, 4).unwrap();
        // |H| = Σ_{m=0}^{k−1} |L_m| + 2|L_k| = 1+2+4+6 + 2·10 = 33 for μ=2, k=4.
        let expected: u64 =
            (0..4).map(|m| layer_size(2, m).unwrap()).sum::<u64>() + 2 * layer_size(2, 4).unwrap();
        assert_eq!(g.num_nodes() as u64, expected);
        assert_eq!(expected, 33);
        assert_eq!(h.z(), 10);
        // r00 has degree μ.
        assert_eq!(g.degree(h.r00), 2);
    }

    #[test]
    fn component_parameters_validated() {
        assert!(component_h(1, 4).is_err());
        assert!(component_h(2, 3).is_err());
    }

    #[test]
    fn component_mu3_builds_too() {
        let (g, h) = component_h(3, 4).unwrap();
        let expected: u64 =
            (0..4).map(|m| layer_size(3, m).unwrap()).sum::<u64>() + 2 * layer_size(3, 4).unwrap();
        assert_eq!(g.num_nodes() as u64, expected);
        assert_eq!(h.z(), layer_size(3, 4).unwrap() as usize);
    }

    #[test]
    fn component_k5_and_k6_build() {
        // k = 5 exercises the odd top layer; k = 6 exercises the non-middle non-root
        // inter-layer rule (which needs ⌊m/2⌋ ≥ 2).
        for k in [5usize, 6] {
            let (g, h) = component_h(2, k).unwrap();
            let expected: u64 = (0..k).map(|m| layer_size(2, m).unwrap()).sum::<u64>()
                + 2 * layer_size(2, k).unwrap();
            assert_eq!(g.num_nodes() as u64, expected, "k = {k}");
            assert_eq!(h.z(), layer_size(2, k).unwrap() as usize);
        }
    }

    #[test]
    fn every_border_node_is_at_distance_k_from_r00() {
        // Claim 4 of Lemma 4.3 implies the unique inter-layer path from L_k to L_j has
        // length k − j; in particular every L_k node is at distance exactly k from r00
        // …at most k via the inter-layer edges, and at least k because consecutive
        // layers differ by one.
        let (g, h) = component_h(2, 4).unwrap();
        let dist = g.bfs_distances(h.r00);
        for copy in 1..=2u8 {
            for q in 1..=h.z() {
                let w = h.w(q, copy);
                assert_eq!(dist[w as usize], Some(4), "w_{q},{copy}");
            }
        }
    }

    #[test]
    fn lemma_4_3_every_node_misses_some_border_pair_at_depth_k_minus_1() {
        let (g, h) = component_h(2, 4).unwrap();
        let k = 4u32;
        for v in g.nodes() {
            let dist = g.bfs_distances(v);
            let exists = (1..=h.z()).any(|q| {
                dist[h.w(q, 1) as usize].unwrap() >= k && dist[h.w(q, 2) as usize].unwrap() >= k
            });
            assert!(exists, "node {v} sees all border pairs within k−1");
        }
    }

    #[test]
    fn gadget_rho_has_degree_4mu_and_components_are_disjoint() {
        let (g, gad) = gadget(2, 4).unwrap();
        assert_eq!(g.degree(gad.rho), 8);
        // |Ĥ| = 4(|H| − 1) + 1.
        assert_eq!(g.num_nodes(), 4 * (33 - 1) + 1);
        // The port blocks at ρ lead into the four components in order L, T, R, B.
        for side in Side::ALL {
            let comp = gad.component(side);
            assert_eq!(comp.r00, gad.rho);
            let first_port = (side.index() * 2) as u32;
            let (l1_node, far) = g.neighbor(gad.rho, first_port).unwrap();
            assert_eq!(far, 1); // μ−1 = 1 at the L_1 node
                                // That node belongs to this side's component.
            assert!(comp.layer(1).all.contains(&l1_node));
        }
        // Components other than ρ are pairwise disjoint.
        let mut seen = std::collections::HashSet::new();
        for side in Side::ALL {
            for n in gad.component(side).all_nodes() {
                if n == gad.rho {
                    continue;
                }
                assert!(seen.insert(n), "node {n} shared between components");
            }
        }
    }

    #[test]
    fn rho_views_do_not_reach_the_border_before_depth_k() {
        // Proposition 4.4's engine: B^{k−1}(ρ) contains no L_k node.
        let (g, gad) = gadget(2, 4).unwrap();
        let dist = g.bfs_distances(gad.rho);
        for side in Side::ALL {
            for q in 1..=gad.component(side).z() {
                for copy in 1..=2u8 {
                    assert!(dist[gad.w(side, q, copy) as usize].unwrap() >= 4);
                }
            }
        }
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::Left.index(), 0);
        assert_eq!(Side::Bottom.letter(), "B");
        assert_eq!(Side::ALL.len(), 4);
    }
}
