//! The class `G_{Δ,k}` of Section 2.2.1 — the Selection advice lower bound family.
//!
//! The class contains one graph `G_i` for every `i ∈ {1, …, |T_{Δ,k}|}`. `G_i` is the
//! disjoint union of
//!
//! * the tree `T_{i,2}` (one copy),
//! * two copies of `T_{j',2}` for every `j' < i`,
//! * two copies of `T_{j,1}` for every `j ≤ i`,
//! * a cycle `C_i` of `4i−1` nodes `c_1, …, c_{4i−1}` whose ports are "alternately 0
//!   and 1": every `c_m` uses port 0 towards `c_{m+1}` and port 1 towards `c_{m−1}`,
//!
//! plus one edge per cycle node attaching a tree root: `c_{4j−3}` and `c_{4j−2}` to the
//! two copies of `r_{j,1}`, `c_{4j−1}` to the first copy of `r_{j,2}`, and `c_{4j'}` to
//! the second copy of `r_{j',2}` (`j' < i`). Attachment edges are labelled 2 at the
//! cycle node and `Δ−1` at the root.
//!
//! Key facts verified by the tests (and, on larger parameters, by experiment E3):
//! Fact 2.3 (class size), Lemma 2.6 (the root of `T_{i,2}` is the unique node with a
//! unique `B^k`), Lemma 2.7 (`ψ_S(G_i) = k`), Lemma 2.8 (cross-graph
//! indistinguishability of the tree roots at depth `k`).

use crate::blocks::{self, PathVariant};
use anet_graph::{GraphBuilder, GraphError, LabeledGraph, Labeling, NodeId, Result};

/// The family `G_{Δ,k}` for fixed `Δ ≥ 3`, `k ≥ 1` (the lower bound of Theorem 2.9 is
/// stated for `Δ ≥ 5` but the construction itself only needs `Δ ≥ 3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GClass {
    /// Maximum degree parameter `Δ`.
    pub delta: usize,
    /// Election-index parameter `k`.
    pub k: usize,
}

/// One member `G_i` of the class, with its role labels.
#[derive(Debug, Clone)]
pub struct GMember {
    /// The member index `i` (1-based, as in the paper).
    pub i: u64,
    /// The graph together with role labels.
    pub labeled: LabeledGraph,
    /// Number of cycle nodes (`4i − 1`).
    pub cycle_len: usize,
}

impl GClass {
    /// Create a handle on the class `G_{Δ,k}`.
    pub fn new(delta: usize, k: usize) -> Result<Self> {
        if delta < 3 {
            return Err(GraphError::invalid("G_{Δ,k} requires Δ ≥ 3"));
        }
        if k < 1 {
            return Err(GraphError::invalid("G_{Δ,k} requires k ≥ 1"));
        }
        // Validate that z is computable.
        blocks::num_leaves(delta, k)?;
        Ok(GClass { delta, k })
    }

    /// `z = (Δ−2)(Δ−1)^{k−1}`, the number of leaves of the tree `T`.
    pub fn z(&self) -> u64 {
        blocks::num_leaves(self.delta, self.k).expect("validated at construction")
    }

    /// `|G_{Δ,k}| = |T_{Δ,k}| = (Δ−1)^z` (Fact 2.3). Errors if the value overflows u64.
    pub fn size(&self) -> Result<u64> {
        blocks::num_augmented_trees(self.delta, self.k)
    }

    /// `log₂ |G_{Δ,k}|` — available even when [`GClass::size`] overflows.
    pub fn log2_size(&self) -> f64 {
        blocks::log2_num_augmented_trees(self.delta, self.k).expect("validated")
    }

    /// Build the member `G_i` (`i` is 1-based).
    pub fn member(&self, i: u64) -> Result<GMember> {
        let total = self.size()?;
        if i == 0 || i > total {
            return Err(GraphError::invalid(format!(
                "member index {i} out of range 1..={total}"
            )));
        }
        let delta = self.delta;
        let k = self.k;
        let cycle_len = (4 * i - 1) as usize;

        let mut b = GraphBuilder::new();
        let mut labels = Labeling::new();

        // Cycle nodes c_1 … c_{4i−1}: ids 0..cycle_len.
        let cycle: Vec<NodeId> = b.add_nodes(cycle_len);
        for (m, &c) in cycle.iter().enumerate() {
            labels.name(c, format!("c{}", m + 1))?;
            labels.tag(c, "cycle");
        }
        for m in 0..cycle_len {
            let u = cycle[m];
            let v = cycle[(m + 1) % cycle_len];
            // Port 0 at c_m towards its successor, port 1 at the successor back.
            b.add_edge(u, 0, v, 1)?;
        }

        // Helper appending one tree copy and attaching it to a cycle node.
        let attach_tree = |b: &mut GraphBuilder,
                           labels: &mut Labeling,
                           j: u64,
                           variant: PathVariant,
                           copy: usize,
                           cycle_node: NodeId|
         -> Result<()> {
            let x = blocks::x_sequence(delta, k, j)?;
            let tree = blocks::append_tree_xb(b, delta, k, &x, variant)?;
            // Attachment edge: port 2 at the cycle node, Δ−1 at the root.
            b.add_edge(cycle_node, 2, tree.root, delta as u32 - 1)?;
            let name = format!("r{j},{}#{}", variant.as_u8(), copy);
            labels.name(tree.root, name)?;
            labels.tag(tree.root, "roots");
            labels.tag(tree.root, format!("roots-{}", variant.as_u8()));
            for &n in &tree.nodes {
                labels.tag(n, format!("tree:{j},{}#{}", variant.as_u8(), copy));
            }
            Ok(())
        };

        for j in 1..=i {
            // Two copies of T_{j,1} attached to c_{4j−3} and c_{4j−2}.
            attach_tree(
                &mut b,
                &mut labels,
                j,
                PathVariant::One,
                1,
                cycle[(4 * j - 3 - 1) as usize],
            )?;
            attach_tree(
                &mut b,
                &mut labels,
                j,
                PathVariant::One,
                2,
                cycle[(4 * j - 2 - 1) as usize],
            )?;
            // First copy of T_{j,2} attached to c_{4j−1}.
            attach_tree(
                &mut b,
                &mut labels,
                j,
                PathVariant::Two,
                1,
                cycle[(4 * j - 1 - 1) as usize],
            )?;
            // Second copy of T_{j,2} attached to c_{4j} — only for j < i.
            if j < i {
                attach_tree(
                    &mut b,
                    &mut labels,
                    j,
                    PathVariant::Two,
                    2,
                    cycle[(4 * j - 1) as usize],
                )?;
            }
        }

        let graph = b.build()?;
        Ok(GMember {
            i,
            labeled: LabeledGraph::new(graph, labels),
            cycle_len,
        })
    }
}

impl GMember {
    /// The cycle node `c_m` (`m` is 1-based).
    pub fn cycle_node(&self, m: usize) -> NodeId {
        self.labeled.node(&format!("c{m}"))
    }

    /// The root `r_{j,b}` of the given copy (`copy ∈ {1, 2}`); copy 2 of `T_{i,2}` does
    /// not exist in `G_i`.
    pub fn root(&self, j: u64, b: u8, copy: usize) -> Option<NodeId> {
        self.labeled.labels.node(&format!("r{j},{b}#{copy}"))
    }

    /// The distinguished root `r_{i,2}` (the unique node with a unique `B^k`,
    /// Lemma 2.6).
    pub fn special_root(&self) -> NodeId {
        self.root(self.i, 2, 1).expect("T_{i,2} always exists")
    }

    /// All tree-root nodes.
    pub fn roots(&self) -> &[NodeId] {
        self.labeled.group("roots")
    }

    /// All cycle nodes, in order `c_1, …, c_{4i−1}`.
    pub fn cycle_nodes(&self) -> Vec<NodeId> {
        (1..=self.cycle_len).map(|m| self.cycle_node(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_views::Refinement;

    #[test]
    fn class_size_matches_fact_2_3() {
        assert_eq!(GClass::new(4, 1).unwrap().size().unwrap(), 9);
        assert_eq!(GClass::new(4, 2).unwrap().size().unwrap(), 729);
        assert_eq!(GClass::new(5, 1).unwrap().size().unwrap(), 64);
        assert_eq!(GClass::new(6, 1).unwrap().size().unwrap(), 625);
    }

    #[test]
    fn parameters_validated() {
        assert!(GClass::new(2, 1).is_err());
        assert!(GClass::new(4, 0).is_err());
        let c = GClass::new(4, 1).unwrap();
        assert!(c.member(0).is_err());
        assert!(c.member(10).is_err());
    }

    #[test]
    fn member_structure_and_degrees() {
        let class = GClass::new(4, 1).unwrap();
        let m = class.member(3).unwrap();
        let g = &m.labeled.graph;
        // Cycle of 4·3−1 = 11 nodes, each of degree 3 (two cycle edges + one root).
        assert_eq!(m.cycle_len, 11);
        for c in m.cycle_nodes() {
            assert_eq!(g.degree(c), 3);
        }
        // 11 trees are attached, one per cycle node.
        assert_eq!(m.roots().len(), 11);
        // Tree roots have degree Δ = 4: Δ−2 children + appended path + cycle edge.
        for &r in m.roots() {
            assert_eq!(g.degree(r), 4);
        }
        // Maximum degree of the whole graph is Δ.
        assert_eq!(g.max_degree(), 4);
        // The attachment edge uses port 2 at the cycle node and Δ−1 = 3 at the root.
        let c1 = m.cycle_node(1);
        let r11 = m.root(1, 1, 1).unwrap();
        assert_eq!(g.neighbor(c1, 2), Some((r11, 3)));
    }

    #[test]
    fn cycle_ports_alternate() {
        let class = GClass::new(4, 1).unwrap();
        let m = class.member(2).unwrap();
        let g = &m.labeled.graph;
        for idx in 0..m.cycle_len {
            let cm = m.cycle_node(idx + 1);
            let successor = m.cycle_node(if idx + 2 > m.cycle_len { 1 } else { idx + 2 });
            assert_eq!(g.neighbor(cm, 0), Some((successor, 1)));
        }
    }

    #[test]
    fn special_root_is_the_unique_unique_view_node_lemma_2_6() {
        // Checked for i ≥ 2: for i = 1 the graph contains a single appended path of the
        // "variant 2" kind, whose interior nodes then have no twin — a boundary case
        // recorded in EXPERIMENTS.md (it does not affect Lemma 2.7 or Theorem 2.9).
        let class = GClass::new(4, 1).unwrap();
        for i in [2u64, 3, 4] {
            let m = class.member(i).unwrap();
            let g = &m.labeled.graph;
            let r = Refinement::compute(g, Some(class.k + 1));
            let unique = r.unique_nodes_at(class.k);
            assert_eq!(
                unique,
                vec![m.special_root()],
                "G_{i}: exactly r_{{i,2}} has a unique B^k"
            );
        }
    }

    #[test]
    fn selection_index_is_exactly_k_lemma_2_7() {
        for (delta, k, i) in [(4usize, 1usize, 2u64), (4, 1, 5), (5, 1, 3), (4, 2, 2)] {
            let class = GClass::new(delta, k).unwrap();
            let m = class.member(i).unwrap();
            let g = &m.labeled.graph;
            let r = Refinement::compute(g, Some(k + 1));
            // No unique node at any depth below k…
            for h in 0..k {
                assert!(
                    r.unique_nodes_at(h).is_empty(),
                    "Δ={delta}, k={k}, i={i}: unexpectedly unique node at depth {h}"
                );
            }
            // …and at least one (exactly r_{i,2}) at depth k.
            assert!(!r.unique_nodes_at(k).is_empty());
        }
    }

    #[test]
    fn root_views_agree_across_members_lemma_2_8() {
        use anet_views::JointRefinement;
        let class = GClass::new(4, 1).unwrap();
        let (alpha, beta) = (2u64, 4u64);
        let ga = class.member(alpha).unwrap();
        let gb = class.member(beta).unwrap();
        let joint =
            JointRefinement::compute(&[&ga.labeled.graph, &gb.labeled.graph], Some(class.k));
        // For every j ≤ α and b, copy 1: same view at depth k in G_α and G_β.
        for j in 1..=alpha {
            for bb in [1u8, 2] {
                let va = ga.root(j, bb, 1).unwrap();
                let vb = gb.root(j, bb, 1).unwrap();
                assert!(joint.same_view((0, va), (1, vb), class.k), "j={j}, b={bb}");
            }
        }
        // And the two copies of T_{α,2} inside G_β are twins (used at the end of the
        // Theorem 2.9 proof).
        let c1 = gb.root(alpha, 2, 1).unwrap();
        let c2 = gb.root(alpha, 2, 2).unwrap();
        let within = JointRefinement::compute(&[&gb.labeled.graph], Some(class.k));
        assert!(within.same_view((0, c1), (0, c2), class.k));
    }

    #[test]
    fn cycle_nodes_all_share_views_lemma_2_5() {
        let class = GClass::new(4, 1).unwrap();
        let m = class.member(3).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(class.k));
        let cycle = m.cycle_nodes();
        for w in cycle.windows(2) {
            assert!(r.same_view(w[0], w[1], class.k));
        }
    }

    #[test]
    fn member_is_reproducible() {
        let class = GClass::new(4, 1).unwrap();
        let a = class.member(5).unwrap();
        let b = class.member(5).unwrap();
        assert_eq!(a.labeled.graph, b.labeled.graph);
    }
}
