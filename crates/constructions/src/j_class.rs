//! Parts 4 and 5 of Section 4.1: the template `J` and the class `J_{μ,k}` — the
//! PPE / CPPE advice lower bound family.
//!
//! **Part 4 (template `J`).** Let `z = |L_k|` and let `w_1, …, w_z` be the nodes of
//! `L_k` ordered by the sequences `b·σ` (side bit prepended to the address, compared
//! lexicographically). The template chains `2^z` gadgets `Ĥ_0, …, Ĥ_{2^z−1}`. For every
//! `i ≥ 1`, write `x_i` for the `z`-bit binary representation of `i`; for every `q`
//! whose bit of `x_i` is 1, add the four border edges
//!
//! 1. `w_{q,1} — w_{q,2}` inside `H_B` of `Ĥ_{i−1}`,
//! 2. `w_{q,1} — w_{q,2}` inside `H_T` of `Ĥ_i`,
//! 3. `w_{q,1}` in `H_R` of `Ĥ_{i−1}` — `w_{q,2}` in `H_L` of `Ĥ_i`,
//! 4. `w_{q,2}` in `H_R` of `Ĥ_{i−1}` — `w_{q,1}` in `H_L` of `Ĥ_i`,
//!
//! each labelled at both endpoints with the endpoint's degree in the plain component
//! `H` (i.e. its next free port).
//!
//! **Part 5 (class member `J_Y`).** For a binary sequence `Y = (y_0, …, y_{2^{z−1}−1})`
//! and every `i` with `y_i = 1`: swap ports `x ↔ x+μ` for `x ∈ 2μ..3μ` at `ρ_i`
//! (exchanging the `H_R` and `H_B` blocks), and swap ports `x ↔ x+μ` for `x ∈ 0..μ` at
//! `ρ_{2^z−1−i}` (exchanging the `H_L` and `H_T` blocks).
//!
//! For experimentation at larger `z` the number of chained gadgets can be capped
//! (`max_gadgets`); the full template is used whenever it fits (`μ = 2`, `k = 4` gives
//! `z = 10`, 1024 gadgets, ≈132k nodes). The cap is a *scale substitution* documented
//! in `DESIGN.md`: the structural lemmas verified on the capped chain do not depend on
//! the chain length, only the counting argument of Theorem 4.11 does.

use crate::component::{append_gadget, Gadget, Side};
use anet_graph::{GraphBuilder, GraphError, LabeledGraph, Labeling, NodeId, Result};

/// The family `J_{μ,k}` for fixed `μ ≥ 2`, `k ≥ 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JClass {
    /// Arity parameter `μ` (the graphs have maximum degree `4μ`).
    pub mu: usize,
    /// Election-index parameter `k`.
    pub k: usize,
}

/// One member of `J_{μ,k}` (or the template `J`, when `y` is `None`).
#[derive(Debug, Clone)]
pub struct JMember {
    /// The binary sequence `Y`, or `None` for the template.
    pub y: Option<Vec<bool>>,
    /// The graph with (sparse) role labels: the `ρ_i` carry names `rho{i}`.
    pub labeled: LabeledGraph,
    /// Per-gadget handles (index `i` = gadget `Ĥ_i`).
    pub gadgets: Vec<Gadget>,
    /// `z = |L_k|`.
    pub z: usize,
}

impl JClass {
    /// Create a handle on the class.
    pub fn new(mu: usize, k: usize) -> Result<Self> {
        if mu < 2 {
            return Err(GraphError::invalid("J_{μ,k} requires μ ≥ 2"));
        }
        if k < 4 {
            return Err(GraphError::invalid("J_{μ,k} requires k ≥ 4"));
        }
        Ok(JClass { mu, k })
    }

    /// `z = |L_k|` (Fact 4.2 gives `μ^{⌊k/2⌋} ≤ z ≤ 4 μ^{⌊k/2⌋}`).
    pub fn z(&self) -> u64 {
        crate::layers::layer_size(self.mu, self.k).expect("validated")
    }

    /// Number of gadgets of the full template, `2^z` (errors if it exceeds `u64`).
    pub fn num_gadgets(&self) -> Result<u64> {
        let z = self.z();
        if z >= 63 {
            return Err(GraphError::invalid("2^z overflows u64"));
        }
        Ok(1u64 << z)
    }

    /// `log₂ |J_{μ,k}| = 2^{z−1}` (Fact 4.2) as a float.
    pub fn log2_size(&self) -> f64 {
        2f64.powf(self.z() as f64 - 1.0)
    }

    /// Length of the defining binary sequence `Y`, i.e. `2^{z−1}`.
    pub fn y_len(&self) -> Result<u64> {
        let z = self.z();
        if z >= 64 {
            return Err(GraphError::invalid("2^{z−1} overflows u64"));
        }
        Ok(1u64 << (z - 1))
    }

    /// Build the template `J` (optionally capped to the first `max_gadgets` gadgets).
    pub fn template(&self, max_gadgets: Option<usize>) -> Result<JMember> {
        self.build_inner(None, max_gadgets)
    }

    /// Build the member `J_Y`. `y` may be shorter than `2^{z−1}`: missing entries are
    /// treated as 0 (this is what makes building members practical — a full-length `Y`
    /// has `2^{z−1}` entries). Entries whose swap would land outside the built chain
    /// (when `max_gadgets` caps it) must be 0.
    pub fn member(&self, y: &[bool], max_gadgets: Option<usize>) -> Result<JMember> {
        let y_len = self.y_len()?;
        if y.len() as u64 > y_len {
            return Err(GraphError::invalid(format!(
                "Y has length {}, maximum is 2^(z−1) = {y_len}",
                y.len()
            )));
        }
        self.build_inner(Some(y.to_vec()), max_gadgets)
    }

    fn build_inner(&self, y: Option<Vec<bool>>, max_gadgets: Option<usize>) -> Result<JMember> {
        let mu = self.mu;
        let k = self.k;
        let z = self.z() as usize;
        let full = self.num_gadgets()? as usize;
        let count = max_gadgets.map(|m| m.min(full)).unwrap_or(full);
        if count < 2 {
            return Err(GraphError::invalid("the chain needs at least 2 gadgets"));
        }

        let mut b = GraphBuilder::new();
        let mut labels = Labeling::new();
        let mut gadgets = Vec::with_capacity(count);
        for i in 0..count {
            let gadget = append_gadget(&mut b, mu, k)?;
            labels.name(gadget.rho, format!("rho{i}"))?;
            labels.tag(gadget.rho, "rho");
            gadgets.push(gadget);
        }

        // Part 4: border edges encoding i in gadget boundaries.
        for i in 1..count {
            for q in 1..=z {
                if !bit_of(i as u64, q, z) {
                    continue;
                }
                let prev = &gadgets[i - 1];
                let cur = &gadgets[i];
                let pairs = [
                    (prev.w(Side::Bottom, q, 1), prev.w(Side::Bottom, q, 2)),
                    (cur.w(Side::Top, q, 1), cur.w(Side::Top, q, 2)),
                    (prev.w(Side::Right, q, 1), cur.w(Side::Left, q, 2)),
                    (prev.w(Side::Right, q, 2), cur.w(Side::Left, q, 1)),
                ];
                for (u1, u2) in pairs {
                    let p1 = b.next_free_port(u1);
                    let p2 = b.next_free_port(u2);
                    b.add_edge(u1, p1, u2, p2)?;
                }
            }
        }

        let graph = b.build()?;

        // Part 5: port swaps at the ρ nodes.
        let graph = match &y {
            None => graph,
            Some(y) => {
                let mu32 = mu as u32;
                let mut swaps = Vec::new();
                for (i, &yi) in y.iter().enumerate() {
                    if !yi {
                        continue;
                    }
                    let mirror = full - 1 - i;
                    if i >= count || mirror >= count {
                        return Err(GraphError::invalid(format!(
                            "Y bit {i} set but gadget {i} or {mirror} is outside the built chain \
                             (max_gadgets too small)"
                        )));
                    }
                    for x in 0..mu32 {
                        // H_R ↔ H_B at ρ_i.
                        swaps.push((gadgets[i].rho, 2 * mu32 + x, 3 * mu32 + x));
                        // H_L ↔ H_T at ρ_{2^z−1−i}.
                        swaps.push((gadgets[mirror].rho, x, mu32 + x));
                    }
                }
                anet_graph::permute::swap_ports_many(&graph, &swaps)?
            }
        };

        Ok(JMember {
            y,
            labeled: LabeledGraph::new(graph, labels),
            gadgets,
            z,
        })
    }
}

/// The `q`-th bit (1-based, most significant first) of the `z`-bit binary
/// representation of `i`.
pub fn bit_of(i: u64, q: usize, z: usize) -> bool {
    debug_assert!(q >= 1 && q <= z);
    (i >> (z - q)) & 1 == 1
}

impl JMember {
    /// Number of gadgets actually built.
    pub fn num_gadgets(&self) -> usize {
        self.gadgets.len()
    }

    /// The centre node `ρ_i`.
    pub fn rho(&self, i: usize) -> NodeId {
        self.gadgets[i].rho
    }

    /// Border node `w_{q,c}` of component `side` of gadget `Ĥ_i`.
    pub fn w(&self, i: usize, side: Side, q: usize, c: u8) -> NodeId {
        self.gadgets[i].w(side, q, c)
    }

    /// The integer `W_{i,side}` encoded (Lemma 4.8's notation) by the border-edge
    /// pattern of the given component: bit `q` is 1 iff `w_{q,1}` has one more incident
    /// edge than it has in the plain component `H`. Reading it off the graph is exactly
    /// what the CPPE algorithm of Lemma 4.8 does.
    pub fn encoded_w(&self, graph_degrees: &dyn Fn(NodeId) -> usize, i: usize, side: Side) -> u64 {
        let comp = self.gadgets[i].component(side);
        let z = comp.z();
        let mut value = 0u64;
        for q in 1..=z {
            let w = comp.w(q, 1);
            // Degree in plain H: recompute as (current degree − 1) if a border edge was
            // added. We detect the border edge by comparing against the matching node
            // in a border-edge-free component: w_{q,1} of H_L of Ĥ_0 never receives
            // border edges... to stay self-contained we instead use the parity trick:
            // the caller passes the *graph* degree; the plain-H degree is the degree of
            // the same w-node in gadget 0's left component, which never has border
            // edges by construction.
            let reference = self.gadgets[0].component(Side::Left).w(q, 1);
            let has_edge = graph_degrees(w) > graph_degrees(reference);
            if has_edge {
                value |= 1 << (z - q);
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_views::{JointRefinement, Refinement};

    fn small_chain(n: usize) -> (JClass, JMember) {
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(n)).unwrap();
        (class, member)
    }

    #[test]
    fn class_parameters_and_sizes_fact_4_2() {
        let class = JClass::new(2, 4).unwrap();
        assert_eq!(class.z(), 10);
        assert_eq!(class.num_gadgets().unwrap(), 1024);
        assert_eq!(class.y_len().unwrap(), 512);
        assert!((class.log2_size() - 512.0).abs() < 1e-9);
        // Fact 4.2's bounds on z: μ^{⌊k/2⌋} ≤ z ≤ 4 μ^{⌊k/2⌋}.
        let lo = 2f64.powi(2);
        let hi = 4.0 * 2f64.powi(2);
        assert!(lo <= class.z() as f64 && class.z() as f64 <= hi);

        assert!(JClass::new(1, 4).is_err());
        assert!(JClass::new(2, 3).is_err());
    }

    #[test]
    fn bit_of_is_most_significant_first() {
        // z = 4: the representation of 5 is 0101.
        assert!(!bit_of(5, 1, 4));
        assert!(bit_of(5, 2, 4));
        assert!(!bit_of(5, 3, 4));
        assert!(bit_of(5, 4, 4));
    }

    #[test]
    fn chain_structure_and_counts() {
        let (class, m) = small_chain(4);
        let g = &m.labeled.graph;
        assert_eq!(m.num_gadgets(), 4);
        assert_eq!(m.z, 10);
        // Every ρ has degree 4μ = 8.
        for i in 0..4 {
            assert_eq!(g.degree(m.rho(i)), 4 * class.mu);
        }
        // Gadget size: 4(|H|−1)+1 = 129 for μ=2, k=4; plus border edges do not add
        // nodes.
        assert_eq!(g.num_nodes(), 4 * 129);
        // Maximum degree: the ρ nodes have degree 4μ; the middle nodes of L_{k−1}
        // connect to both copies of L_k and have degree 2μ+5, which exceeds 4μ only in
        // the μ = 2 corner case used by this test (Theorem 4.11 takes μ = ⌈Δ/4⌉ ≥ 4,
        // where 4μ dominates). So the expected maximum is max(4μ, 2μ+5).
        assert_eq!(g.max_degree(), usize::max(4 * class.mu, 2 * class.mu + 5));
    }

    #[test]
    fn border_edges_encode_the_gadget_index() {
        let (_class, m) = small_chain(4);
        let g = &m.labeled.graph;
        let deg = |v: NodeId| g.degree(v);
        // H_T and H_L of Ĥ_i encode i; H_B and H_R of Ĥ_{i−1} encode i as well.
        for i in 1..4usize {
            assert_eq!(m.encoded_w(&deg, i, Side::Top), i as u64);
            assert_eq!(m.encoded_w(&deg, i - 1, Side::Bottom), i as u64);
        }
        // Ĥ_0's top/left encode 0; the last gadget's bottom/right encode the next index
        // only if it was built — in a capped chain they encode 0.
        assert_eq!(m.encoded_w(&deg, 0, Side::Top), 0);
        assert_eq!(m.encoded_w(&deg, 0, Side::Left), 0);
        assert_eq!(m.encoded_w(&deg, 3, Side::Bottom), 0);
    }

    #[test]
    fn rho_views_are_identical_below_k_proposition_4_4() {
        let (class, m) = small_chain(4);
        let r = Refinement::compute(&m.labeled.graph, Some(class.k - 1));
        for i in 1..m.num_gadgets() {
            assert!(
                r.same_view(m.rho(0), m.rho(i), class.k - 1),
                "ρ_0 vs ρ_{i} at depth k−1"
            );
        }
    }

    #[test]
    fn member_swaps_act_on_the_right_rho_blocks() {
        let class = JClass::new(2, 4).unwrap();
        let template = class.template(Some(4)).unwrap();
        // A short Y with y_1 = 1 requires gadgets 1 and 2^z−1−1 = 1022 — outside a
        // 4-gadget chain, so it must be rejected.
        assert!(class.member(&[false, true], Some(4)).is_err());

        // Use the full-template mirror relation on a capped chain by picking y_0 = 1:
        // the mirror gadget is 1023, also outside the chain → rejected too.
        assert!(class.member(&[true], Some(4)).is_err());

        // With the full template the swap is applied (this is exercised in the
        // integration tests); here we at least check that an all-zero Y reproduces the
        // template exactly.
        let member = class.member(&[false, false, false], Some(4)).unwrap();
        assert_eq!(member.labeled.graph, template.labeled.graph);
    }

    #[test]
    fn no_node_is_unique_at_depth_k_minus_1_on_a_chain_lemma_4_6() {
        // Lemma 4.6 is about the full template; on a capped chain the interior gadgets
        // still pair up. We check the weaker but structural statement that the ρ nodes
        // and all border nodes of interior gadgets are non-unique at depth k−1.
        let (class, m) = small_chain(6);
        let r = Refinement::compute(&m.labeled.graph, Some(class.k - 1));
        for i in 0..m.num_gadgets() {
            assert!(!r.is_unique(m.rho(i), class.k - 1), "rho{i}");
        }
        for i in 1..5usize {
            for side in Side::ALL {
                for q in 1..=m.z {
                    assert!(
                        !r.is_unique(m.w(i, side, q, 1), class.k - 1),
                        "w_{q},1 of {side:?} in gadget {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn corner_border_node_views_agree_across_members_lemma_4_10_part_1() {
        // v_Y = w_{1,1} in H_L of Ĥ_0 has the same B^k in every member of the class.
        // We compare the template against a member whose first differing swap is far
        // from gadget 0 (use the full-template mirror: a bit set at i = 5 affects ρ_5
        // and ρ_{1018}; with a capped chain we cannot place legal swaps, so compare two
        // capped chains built with different caps instead — the corner node cannot see
        // the far end either way).
        let class = JClass::new(2, 4).unwrap();
        let a = class.template(Some(4)).unwrap();
        let b = class.template(Some(6)).unwrap();
        let joint = JointRefinement::compute(&[&a.labeled.graph, &b.labeled.graph], Some(class.k));
        let va = a.w(0, Side::Left, 1, 1);
        let vb = b.w(0, Side::Left, 1, 1);
        assert!(joint.same_view((0, va), (1, vb), class.k));
    }
}
