//! Graph families as iterable workloads.
//!
//! The paper's constructions are *classes* of graphs (`G_{Δ,k}`, `U_{Δ,k}`,
//! `J_{μ,k}`); experiments and the `ElectionEngine` batch runner in `anet-core` want
//! to sweep an election configuration across "some members of a class" without caring
//! how members are enumerated. [`GraphFamily`] is that abstraction: a family yields
//! named [`FamilyInstance`]s on demand, capped by the caller.
//!
//! For `G` the parameter is the member index `i`; for `U` it is the member index in
//! the `(Δ−1)`-ary encoding of `σ` (see `UClass::member_by_index`); for `J` it is the
//! chain-length cap passed to `JClass::template` (full members are exponentially
//! large, so the sweep walks capped template chains of doubling length, exactly the
//! instances the paper's experiment E5 measures).

use crate::{GClass, JClass, UClass};
use anet_graph::PortGraph;

/// One named instance of a graph family.
#[derive(Debug, Clone)]
pub struct FamilyInstance {
    /// Human-readable instance name, unique within the family.
    pub name: String,
    /// The family-specific parameter the instance was built from (member index for
    /// `G`/`U`, chain-length cap for `J`); enough to rebuild richer handles such as
    /// `JMember` when a solver needs the map, not just the graph.
    pub param: u64,
    /// The instance graph.
    pub graph: PortGraph,
}

impl FamilyInstance {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, param: u64, graph: PortGraph) -> Self {
        FamilyInstance {
            name: name.into(),
            param,
            graph,
        }
    }
}

/// A family of anonymous networks that can enumerate (a bounded number of) members.
///
/// Families are `Send + Sync`: sweep drivers fan scenarios out across worker
/// threads and share the family handles between them. Every family in this
/// workspace is plain generation-parameter data, so the bound costs nothing.
pub trait GraphFamily: Send + Sync {
    /// The family's display name (e.g. `G_{4,1}`).
    fn family_name(&self) -> String;

    /// Up to `max_instances` members of the family, smallest parameters first.
    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance>;

    /// A key under which [`instances`](GraphFamily::instances) results may be cached
    /// and shared: two families with equal keys must enumerate identical instance
    /// lists. Defaults to [`family_name`](GraphFamily::family_name), which is correct
    /// whenever the name pins down every generation parameter (as for the paper's
    /// `G`/`U`/`J` classes); families whose display name omits instance-selection
    /// parameters (size or dimension lists, for example) must override this to
    /// include them, or caches keyed on the name would silently serve one family's
    /// graphs to another.
    fn instance_cache_key(&self) -> String {
        self.family_name()
    }
}

// Blanket impls so registries can hold `Box<dyn GraphFamily>` (or hand out `&dyn`
// references) and still pass them wherever an `impl GraphFamily` is expected — e.g.
// the scenario registry of `anet-workloads` stores families boxed and sweeps them
// through `BatchRunner`.
impl<T: GraphFamily + ?Sized> GraphFamily for &T {
    fn family_name(&self) -> String {
        (**self).family_name()
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        (**self).instances(max_instances)
    }

    fn instance_cache_key(&self) -> String {
        (**self).instance_cache_key()
    }
}

impl<T: GraphFamily + ?Sized> GraphFamily for Box<T> {
    fn family_name(&self) -> String {
        (**self).family_name()
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        (**self).instances(max_instances)
    }

    fn instance_cache_key(&self) -> String {
        (**self).instance_cache_key()
    }
}

impl GraphFamily for GClass {
    fn family_name(&self) -> String {
        format!("G_{{{},{}}}", self.delta, self.k)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        let size = self.size().unwrap_or(u64::MAX);
        (1..=size)
            .take(max_instances)
            .filter_map(|i| {
                let member = self.member(i).ok()?;
                Some(FamilyInstance {
                    name: format!("{} member {i}", self.family_name()),
                    param: i,
                    graph: member.labeled.graph,
                })
            })
            .collect()
    }
}

impl GraphFamily for UClass {
    fn family_name(&self) -> String {
        format!("U_{{{},{}}}", self.delta, self.k)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        // Spread indices across the class so the sweep sees structurally different
        // swap sequences, not just the first few (which differ only near s_1).
        // Member indices are 1-based (`UClass::member_by_index`).
        let size = self.size().unwrap_or(u64::MAX);
        let take = (max_instances as u64).min(size);
        (0..take)
            .map(|j| {
                if take <= 1 {
                    1
                } else {
                    1 + j * ((size - 1) / (take - 1))
                }
            })
            .filter_map(|idx| {
                let member = self.member_by_index(idx).ok()?;
                Some(FamilyInstance {
                    name: format!("{} member #{idx}", self.family_name()),
                    param: idx,
                    graph: member.labeled.graph,
                })
            })
            .collect()
    }
}

impl GraphFamily for JClass {
    fn family_name(&self) -> String {
        format!("J_{{{},{}}}", self.mu, self.k)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        // Capped template chains of doubling length: 2, 4, 8, … gadgets.
        let max_gadgets = self.num_gadgets().unwrap_or(u64::MAX);
        let mut out = Vec::new();
        let mut cap = 2u64;
        while out.len() < max_instances && cap <= max_gadgets {
            if let Ok(member) = self.template(Some(cap as usize)) {
                out.push(FamilyInstance {
                    name: format!("{} chain of {cap} gadgets", self.family_name()),
                    param: cap,
                    graph: member.labeled.graph,
                });
            }
            cap *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_family_enumerates_members_in_order() {
        let class = GClass::new(4, 1).unwrap();
        let instances = class.instances(3);
        assert_eq!(instances.len(), 3);
        assert_eq!(instances[0].param, 1);
        assert_eq!(instances[2].param, 3);
        assert!(instances[0].name.contains("G_{4,1}"));
        // Member graphs grow with the index.
        assert!(instances[0].graph.num_nodes() < instances[2].graph.num_nodes());
    }

    #[test]
    fn g_family_cap_respects_class_size() {
        let class = GClass::new(4, 1).unwrap();
        let all = class.instances(1000);
        assert_eq!(all.len(), class.size().unwrap() as usize);
    }

    #[test]
    fn u_family_spreads_member_indices() {
        let class = UClass::new(4, 1).unwrap();
        let instances = class.instances(3);
        assert_eq!(instances.len(), 3);
        assert_eq!(instances[0].param, 1);
        assert!(instances[2].param > instances[1].param);
        for inst in &instances {
            assert!(inst.graph.num_nodes() > 0);
            assert_eq!(inst.graph.max_degree(), 2 * class.delta - 1);
        }
    }

    #[test]
    fn boxed_and_borrowed_families_delegate() {
        let class = GClass::new(4, 1).unwrap();
        let boxed: Box<dyn GraphFamily> = Box::new(GClass::new(4, 1).unwrap());
        assert_eq!(boxed.family_name(), class.family_name());
        assert_eq!(boxed.instances(2).len(), 2);
        let borrowed: &dyn GraphFamily = &class;
        assert_eq!(borrowed.family_name(), class.family_name());
        let inst = FamilyInstance::new("x", 3, class.member(1).unwrap().labeled.graph);
        assert_eq!(inst.name, "x");
        assert_eq!(inst.param, 3);
    }

    #[test]
    fn j_family_yields_doubling_chains() {
        let class = JClass::new(2, 4).unwrap();
        let instances = class.instances(3);
        assert_eq!(instances.len(), 3);
        assert_eq!(
            instances.iter().map(|i| i.param).collect::<Vec<_>>(),
            vec![2, 4, 8]
        );
        // The cap is the gadget count; a member can be rebuilt from it.
        let member = class.template(Some(instances[1].param as usize)).unwrap();
        assert_eq!(member.labeled.graph, instances[1].graph);
    }
}
