//! Exact instances of the graphs drawn in Figures 1–11 of the paper.
//!
//! Each `figure*` function builds the object the figure depicts (with the figure's own
//! parameters where the paper fixes them, and representative small parameters where
//! the figure is schematic), and returns a [`FigureReport`] containing a DOT rendering
//! plus the structural statistics a reader would check against the drawing (node and
//! edge counts, degrees, specific port labels). The `exp_figures` binary in
//! `anet-bench` prints all of them; the tests here assert the statistics.

use crate::blocks::{self, PathVariant};
use crate::component::{component_h, gadget, Side};
use crate::g_class::GClass;
use crate::j_class::JClass;
use crate::layers::layer_graph;
use crate::u_class::UClass;
use anet_graph::dot::{to_dot, DotOptions};
use anet_graph::{GraphBuilder, Labeling, NodeId, PortGraph, Result};

/// A regenerated figure: the graph(s) it shows, a DOT rendering and key statistics.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Figure identifier, e.g. `"Figure 1 (left): T_{X,1}"`.
    pub name: String,
    /// What the figure depicts and with which parameters it was regenerated.
    pub description: String,
    /// Graphviz rendering (node roles and both port labels per edge).
    pub dot: String,
    /// `(statistic, value)` pairs checked against the drawing.
    pub stats: Vec<(String, String)>,
}

fn report(
    name: &str,
    description: &str,
    graph: &PortGraph,
    labels: Option<&Labeling>,
    extra: Vec<(String, String)>,
) -> FigureReport {
    let mut stats = vec![
        ("nodes".to_string(), graph.num_nodes().to_string()),
        ("edges".to_string(), graph.num_edges().to_string()),
        ("max degree".to_string(), graph.max_degree().to_string()),
    ];
    stats.extend(extra);
    FigureReport {
        name: name.to_string(),
        description: description.to_string(),
        dot: to_dot(
            graph,
            labels,
            &DotOptions {
                name: name.to_string(),
                ..DotOptions::default()
            },
        ),
        stats,
    }
}

/// Build `T_{X,b}` as a standalone graph (valid on its own: the root's ports are
/// `0..Δ−1` except `Δ−1`, which is only added by the enclosing constructions).
fn standalone_tree_xb(
    delta: usize,
    k: usize,
    x: &[u32],
    variant: PathVariant,
) -> Result<(PortGraph, NodeId)> {
    let mut b = GraphBuilder::new();
    let t = blocks::append_tree_xb(&mut b, delta, k, x, variant)?;
    Ok((b.build()?, t.root))
}

/// Figure 1: the trees `T_{X,1}` (left) and `T_{X,2}` (right) for `k = 2`, `Δ = 4`,
/// `X = (1, 2, 3, 3, 2, 2)`.
pub fn figure1() -> Result<Vec<FigureReport>> {
    let x = [1u32, 2, 3, 3, 2, 2];
    let mut out = Vec::new();
    for (variant, side) in [(PathVariant::One, "left"), (PathVariant::Two, "right")] {
        let (g, root) = standalone_tree_xb(4, 2, &x, variant)?;
        let mut labels = Labeling::new();
        labels.name(root, "r")?;
        out.push(report(
            &format!("Figure 1 ({side}): T_X,{}", variant.as_u8()),
            "Appended-path tree for k=2, Δ=4, X=(1,2,3,3,2,2)",
            &g,
            Some(&labels),
            vec![
                (
                    "pendant (degree-1) nodes".into(),
                    g.degree_histogram()[1].to_string(),
                ),
                ("sum of X".into(), x.iter().sum::<u32>().to_string()),
            ],
        ));
    }
    Ok(out)
}

/// Figure 2: the graph `G_i` of the class `G_{Δ,k}`; regenerated for `Δ = 4`, `k = 1`,
/// `i = 3` (the paper's figure is schematic in `i`).
pub fn figure2() -> Result<FigureReport> {
    let class = GClass::new(4, 1)?;
    let m = class.member(3)?;
    Ok(report(
        "Figure 2: G_i",
        "Member G_3 of G_{4,1}: cycle of 4i−1 = 11 nodes, one tree per cycle node",
        &m.labeled.graph,
        Some(&m.labeled.labels),
        vec![
            ("cycle length".into(), m.cycle_len.to_string()),
            ("attached trees".into(), m.roots().len().to_string()),
        ],
    ))
}

/// Figure 3: the template graph `U`; regenerated for `Δ = 4`, `k = 1`.
pub fn figure3() -> Result<FigureReport> {
    let class = UClass::new(4, 1)?;
    let u = class.template()?;
    Ok(report(
        "Figure 3: template U",
        "Template U of U_{4,1}: 2|T| cycle roots of degree Δ+2, 2|T| heavy roots of degree 2Δ−1",
        &u.labeled.graph,
        Some(&u.labeled.labels),
        vec![
            ("y = |T_{Δ,k}|".into(), class.y().to_string()),
            ("cycle roots".into(), u.cycle_roots().len().to_string()),
            ("heavy roots".into(), u.heavy_roots().len().to_string()),
        ],
    ))
}

/// Figure 4: the layer graphs `L_0, …, L_5` for `μ = 3`.
pub fn figure4() -> Result<Vec<FigureReport>> {
    let mut out = Vec::new();
    for m in 0..=5usize {
        let (g, _) = layer_graph(3, m)?;
        out.push(report(
            &format!("Figure 4: L_{m}"),
            "Layer graph for μ = 3",
            &g,
            None,
            vec![(
                "diameter".into(),
                if m == 0 {
                    "0".into()
                } else {
                    g.diameter().to_string()
                },
            )],
        ));
    }
    Ok(out)
}

/// DOT rendering of the subgraph of a labelled graph induced by a node set (the
/// figure drawings of `H` show only a few consecutive layers).
fn induced_dot(g: &PortGraph, keep: &[NodeId], name: &str) -> String {
    use std::fmt::Write as _;
    let keep_set: std::collections::HashSet<NodeId> = keep.iter().copied().collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph {} {{",
        name.replace(|c: char| !c.is_alphanumeric(), "_")
    );
    for &v in keep {
        let _ = writeln!(out, "  n{v} [label=\"\"];");
    }
    for e in g.edges() {
        if keep_set.contains(&e.u) && keep_set.contains(&e.v) {
            let _ = writeln!(
                out,
                "  n{} -- n{} [taillabel=\"{}\", headlabel=\"{}\"];",
                e.u, e.v, e.port_u, e.port_v
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Figures 5–7: subgraphs of the component graph `H` (μ = 3, k = 6 > 5) induced by
/// layers `L_0..L_3`, `L_3 ∪ L_4`, and `L_4 ∪ L_5` respectively.
pub fn figures_5_to_7() -> Result<Vec<FigureReport>> {
    let (g, h) = component_h(3, 6)?;
    let layer_nodes = |m: usize| -> Vec<NodeId> {
        if m == 0 {
            vec![h.r00]
        } else {
            h.layer(m).all.clone()
        }
    };
    let specs: [(&str, Vec<usize>); 3] = [
        ("Figure 5: H restricted to L_0..L_3", vec![0, 1, 2, 3]),
        ("Figure 6: H restricted to L_3 and L_4", vec![3, 4]),
        ("Figure 7: H restricted to L_4 and L_5", vec![4, 5]),
    ];
    let mut out = Vec::new();
    for (name, ms) in specs {
        let mut keep = Vec::new();
        for &m in &ms {
            keep.extend(layer_nodes(m));
        }
        let keep_set: std::collections::HashSet<NodeId> = keep.iter().copied().collect();
        let induced_edges = g
            .edges()
            .filter(|e| keep_set.contains(&e.u) && keep_set.contains(&e.v))
            .count();
        out.push(FigureReport {
            name: name.to_string(),
            description: "Induced subgraph of the component graph H for μ = 3, k = 6".to_string(),
            dot: induced_dot(&g, &keep, name),
            stats: vec![
                ("nodes".into(), keep.len().to_string()),
                ("induced edges".into(), induced_edges.to_string()),
            ],
        });
    }
    Ok(out)
}

/// Figure 8: the gadget `Ĥ` and the port blocks at `ρ` (regenerated for μ = 2, k = 4).
pub fn figure8() -> Result<FigureReport> {
    let (g, gad) = gadget(2, 4)?;
    let mut labels = Labeling::new();
    labels.name(gad.rho, "rho")?;
    let mu = 2usize;
    let mut extra = vec![("deg(ρ)".into(), g.degree(gad.rho).to_string())];
    for side in Side::ALL {
        let ports: Vec<String> = (side.index() * mu..(side.index() + 1) * mu)
            .map(|p| p.to_string())
            .collect();
        extra.push((format!("ports of H_{}", side.letter()), ports.join(",")));
    }
    Ok(report(
        "Figure 8: gadget Ĥ",
        "Four copies of H merged at ρ; port blocks 0..μ, μ..2μ, 2μ..3μ, 3μ..4μ",
        &g,
        Some(&labels),
        extra,
    ))
}

/// Figure 9: the border edges added between two consecutive gadgets (`Ĥ_4`, `Ĥ_5`) of
/// the template `J` (μ = 2, k = 4, chain capped at 6 gadgets — the border pattern
/// between gadgets 4 and 5 does not depend on the rest of the chain).
pub fn figure9() -> Result<FigureReport> {
    let class = JClass::new(2, 4)?;
    let j = class.template(Some(6))?;
    let g = &j.labeled.graph;
    let z = j.z;
    // Count the border edges incident to gadget 5's T/L components and gadget 4's B/R.
    let i = 5usize;
    let ones = (1..=z)
        .filter(|&q| crate::j_class::bit_of(i as u64, q, z))
        .count();
    Ok(report(
        "Figure 9: border edges between gadgets 4 and 5",
        "Each set bit of the index adds 4 border edges (HB of the previous gadget, HT of the next, and two crossing HR–HL edges)",
        g,
        Some(&j.labeled.labels),
        vec![
            ("z".into(), z.to_string()),
            ("set bits of 5".into(), ones.to_string()),
            ("border edges between Ĥ_4 and Ĥ_5 (crossing)".into(), (2 * ones).to_string()),
            ("border edges inside Ĥ_4 (bottom) for index 5".into(), ones.to_string()),
            ("border edges inside Ĥ_5 (top) for index 5".into(), ones.to_string()),
        ],
    ))
}

/// Figure 10: the three possible port layouts at a gadget's `ρ` node in a member `J_Y`
/// (no swap; right/bottom swap for `y_i = 1, i < 2^{z−1}`; left/top swap for the mirror
/// gadget). Returns a textual report (no graph is drawn in addition to Figure 8's).
pub fn figure10() -> FigureReport {
    let mu = 2usize;
    let block = |from: usize| -> String { format!("{}..{}", from * mu, (from + 1) * mu - 1) };
    FigureReport {
        name: "Figure 10: port swaps at ρ_i".to_string(),
        description: "The three outcomes of Part 5 of the construction".to_string(),
        dot: String::new(),
        stats: vec![
            (
                "(a) y_i = 0".into(),
                format!(
                    "HL={}, HT={}, HR={}, HB={}",
                    block(0),
                    block(1),
                    block(2),
                    block(3)
                ),
            ),
            (
                "(b) y_i = 1, i in first half".into(),
                format!(
                    "HL={}, HT={}, HR={}, HB={} (R and B exchanged)",
                    block(0),
                    block(1),
                    block(3),
                    block(2)
                ),
            ),
            (
                "(c) mirror gadget of a set bit".into(),
                format!(
                    "HL={}, HT={}, HR={}, HB={} (L and T exchanged)",
                    block(1),
                    block(0),
                    block(2),
                    block(3)
                ),
            ),
        ],
    }
}

/// Figure 11: the member `J_Y` with `Y = (1, 0, …, 0)`. Building the full template
/// (1024 gadgets for μ = 2, k = 4) is deliberately left to the caller: pass
/// `max_gadgets = None` to reproduce the figure exactly, or a cap for a quick look at
/// the chain structure (in which case the two swapped end-gadgets are not included and
/// the figure degenerates to the template chain).
pub fn figure11(max_gadgets: Option<usize>) -> Result<FigureReport> {
    let class = JClass::new(2, 4)?;
    let member = if max_gadgets.is_none() {
        class.member(&[true], None)?
    } else {
        class.template(max_gadgets)?
    };
    let g = &member.labeled.graph;
    Ok(FigureReport {
        name: "Figure 11: J_Y with Y = (1,0,…,0)".to_string(),
        description: if max_gadgets.is_none() {
            "Full template with the R/B blocks of ρ_0 and the L/T blocks of ρ_{2^z−1} swapped"
                .into()
        } else {
            "Capped chain (template only): the swapped end gadgets require the full template".into()
        },
        dot: String::new(), // the full drawing is far too large; stats carry the content
        stats: vec![
            ("gadgets built".into(), member.num_gadgets().to_string()),
            ("nodes".into(), g.num_nodes().to_string()),
            ("edges".into(), g.num_edges().to_string()),
            ("z".into(), member.z.to_string()),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_the_drawing() {
        let reports = figure1().unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            // |T| = 9 nodes, Σ X = 13 pendants, path of 3 nodes → 25 nodes, 24 edges.
            assert_eq!(r.stats[0], ("nodes".to_string(), "25".to_string()));
            assert_eq!(r.stats[1], ("edges".to_string(), "24".to_string()));
            assert!(r.dot.contains("label=\"r\""));
        }
    }

    #[test]
    fn figure2_and_3_build() {
        let f2 = figure2().unwrap();
        assert_eq!(
            f2.stats
                .iter()
                .find(|(k, _)| k == "cycle length")
                .unwrap()
                .1,
            "11"
        );
        let f3 = figure3().unwrap();
        assert_eq!(
            f3.stats
                .iter()
                .find(|(k, _)| k == "y = |T_{Δ,k}|")
                .unwrap()
                .1,
            "9"
        );
    }

    #[test]
    fn figure4_layer_sizes_match_fact_4_1() {
        let reports = figure4().unwrap();
        let sizes: Vec<&str> = reports.iter().map(|r| r.stats[0].1.as_str()).collect();
        assert_eq!(sizes, vec!["1", "3", "5", "8", "17", "26"]);
    }

    #[test]
    fn figures_5_to_7_have_the_right_node_counts() {
        let reports = figures_5_to_7().unwrap();
        // L_0..L_3 for μ=3: 1+3+5+8 = 17 nodes; L_3∪L_4: 8+17 = 25; L_4∪L_5: 17+26 = 43.
        let nodes: Vec<&str> = reports.iter().map(|r| r.stats[0].1.as_str()).collect();
        assert_eq!(nodes, vec!["17", "25", "43"]);
        for r in &reports {
            assert!(r.dot.starts_with("graph "));
        }
    }

    #[test]
    fn figure8_port_blocks() {
        let f8 = figure8().unwrap();
        assert_eq!(f8.stats.iter().find(|(k, _)| k == "deg(ρ)").unwrap().1, "8");
        assert_eq!(
            f8.stats
                .iter()
                .find(|(k, _)| k == "ports of H_B")
                .unwrap()
                .1,
            "6,7"
        );
    }

    #[test]
    fn figure9_and_10_reports() {
        let f9 = figure9().unwrap();
        // 5 = 0000000101 in 10 bits: two set bits.
        assert_eq!(
            f9.stats
                .iter()
                .find(|(k, _)| k == "set bits of 5")
                .unwrap()
                .1,
            "2"
        );
        let f10 = figure10();
        assert_eq!(f10.stats.len(), 3);
        assert!(f10.stats[1].1.contains("R and B exchanged"));
    }

    #[test]
    fn figure11_capped_chain() {
        let f11 = figure11(Some(4)).unwrap();
        assert_eq!(
            f11.stats
                .iter()
                .find(|(k, _)| k == "gadgets built")
                .unwrap()
                .1,
            "4"
        );
    }
}
