//! The template `U` and class `U_{Δ,k}` of Section 3.1 — the Port Election advice
//! lower bound family.
//!
//! Template `U` (maximum degree `2Δ−1`):
//!
//! 1. Disjoint union of all trees `T_{j,b}` (`j ∈ 1..=|T_{Δ,k}|`, `b ∈ {1,2}`), whose
//!    roots are joined into a cycle `r_{1,1}, r_{1,2}, r_{2,1}, …, r_{|T|,2}, r_{1,1}`;
//!    along the cycle each root uses port `Δ+1` forwards and `Δ−1` backwards.
//! 2. For each `j`, two extra copies `T_{j,1,1}`, `T_{j,1,2}` of `T_{j,1}` with roots
//!    `r_{j,1,1}`, `r_{j,1,2}`.
//! 3. For each `j`, a path of length `k+1` from `r_{j,1}` to `r_{j,1,1}` (port `Δ` at
//!    `r_{j,1}`, `Δ−1` at `r_{j,1,1}`, interior ports 1 towards `r_{j,1}` / 0 towards
//!    `r_{j,1,1}`), and likewise from `r_{j,2}` to `r_{j,1,2}`.
//! 4. For each `j`, `Δ−1` pendant paths of length `k+1` at `r_{j,1,1}` using ports
//!    `Δ, …, 2Δ−2` there (interior ports 0 towards `r_{j,1,1}`, 1 away), and likewise
//!    at `r_{j,1,2}`.
//!
//! A member `G_σ` (`σ = (s_1, …, s_{|T|})`, `s_j ∈ 1..=Δ−1`) is the template with ports
//! `Δ−1` and `Δ−1+s_j` exchanged at both `r_{j,1,1}` and `r_{j,1,2}`.
//!
//! The tests verify Fact 3.1 (class size), Proposition 3.2 (cycle roots share views up
//! to depth `k−1`), Lemma 3.6 / Corollary 3.7 (`ψ_S ≥ k`), Lemma 3.8 (each cycle root
//! has a unique `B^k`), Claim 1 of Lemma 3.9 (the two heavy roots of index `j` are
//! twins at depth `k` and distinct from other heavy roots), and the cross-graph
//! indistinguishability of heavy roots used by Theorem 3.11.

use crate::blocks::{self, PathVariant};
use anet_graph::{GraphBuilder, GraphError, LabeledGraph, Labeling, NodeId, Result};

/// The family `U_{Δ,k}` for fixed `Δ ≥ 4`, `k ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UClass {
    /// The tree-degree parameter `Δ` (the graphs themselves have maximum degree `2Δ−1`).
    pub delta: usize,
    /// Election-index parameter `k`.
    pub k: usize,
}

/// One member of `U_{Δ,k}` (or the template, when `sigma` is `None`).
#[derive(Debug, Clone)]
pub struct UMember {
    /// The port-swap sequence `σ`, or `None` for the template `U`.
    pub sigma: Option<Vec<u32>>,
    /// The graph with role labels.
    pub labeled: LabeledGraph,
    /// `y = |T_{Δ,k}|`.
    pub y: u64,
}

impl UClass {
    /// Create a handle on the class.
    pub fn new(delta: usize, k: usize) -> Result<Self> {
        if delta < 4 {
            return Err(GraphError::invalid("U_{Δ,k} requires Δ ≥ 4"));
        }
        if k < 1 {
            return Err(GraphError::invalid("U_{Δ,k} requires k ≥ 1"));
        }
        blocks::num_augmented_trees(delta, k)?;
        Ok(UClass { delta, k })
    }

    /// `y = |T_{Δ,k}|`, the number of tree indices (and half the number of cycle roots).
    pub fn y(&self) -> u64 {
        blocks::num_augmented_trees(self.delta, self.k).expect("validated")
    }

    /// `|U_{Δ,k}| = (Δ−1)^{|T_{Δ,k}|}` (Fact 3.1); errors on u64 overflow.
    pub fn size(&self) -> Result<u64> {
        let y: u32 = self
            .y()
            .try_into()
            .map_err(|_| GraphError::invalid("|T_{Δ,k}| too large"))?;
        (self.delta as u64 - 1)
            .checked_pow(y)
            .ok_or_else(|| GraphError::invalid("(Δ−1)^|T| overflows u64"))
    }

    /// `log₂ |U_{Δ,k}|` — available even when the count overflows.
    pub fn log2_size(&self) -> f64 {
        self.y() as f64 * ((self.delta - 1) as f64).log2()
    }

    /// Build the template graph `U` (no port swaps).
    pub fn template(&self) -> Result<UMember> {
        self.build_inner(None)
    }

    /// Build the member `G_σ`. `sigma` must have length `y` with entries in `1..=Δ−1`.
    pub fn member(&self, sigma: &[u32]) -> Result<UMember> {
        let y = self.y();
        if sigma.len() as u64 != y {
            return Err(GraphError::invalid(format!(
                "σ has length {}, expected {y}",
                sigma.len()
            )));
        }
        for &s in sigma {
            if s < 1 || s as usize > self.delta - 1 {
                return Err(GraphError::invalid(format!(
                    "σ entry {s} outside 1..={}",
                    self.delta - 1
                )));
            }
        }
        self.build_inner(Some(sigma.to_vec()))
    }

    /// Build the member whose σ is the `idx`-th sequence (1-based, lexicographic).
    pub fn member_by_index(&self, idx: u64) -> Result<UMember> {
        let total = self.size()?;
        if idx == 0 || idx > total {
            return Err(GraphError::invalid(format!(
                "member index {idx} out of range 1..={total}"
            )));
        }
        let y = self.y() as usize;
        let base = (self.delta - 1) as u64;
        let mut rem = idx - 1;
        let mut sigma = vec![1u32; y];
        for slot in (0..y).rev() {
            sigma[slot] = (rem % base) as u32 + 1;
            rem /= base;
        }
        self.member(&sigma)
    }

    fn build_inner(&self, sigma: Option<Vec<u32>>) -> Result<UMember> {
        let delta = self.delta;
        let k = self.k;
        let y = self.y();
        let d = delta as u32;

        let mut b = GraphBuilder::new();
        let mut labels = Labeling::new();

        // Step 1: the trees T_{j,b} and the cycle of their roots.
        let mut cycle_roots: Vec<NodeId> = Vec::with_capacity(2 * y as usize);
        for j in 1..=y {
            let x = blocks::x_sequence(delta, k, j)?;
            for variant in [PathVariant::One, PathVariant::Two] {
                let tree = blocks::append_tree_xb(&mut b, delta, k, &x, variant)?;
                labels.name(tree.root, format!("r{j},{}", variant.as_u8()))?;
                labels.tag(tree.root, "cycle-roots");
                for &n in &tree.nodes {
                    labels.tag(n, format!("tree:{j},{}", variant.as_u8()));
                }
                cycle_roots.push(tree.root);
            }
        }
        let len = cycle_roots.len();
        for idx in 0..len {
            let a = cycle_roots[idx];
            let next = cycle_roots[(idx + 1) % len];
            // Forward port Δ+1 at a, backward port Δ−1 at the next root.
            b.add_edge(a, d + 1, next, d - 1)?;
        }

        // Step 2: the extra copies T_{j,1,1} and T_{j,1,2}.
        let mut heavy_roots: Vec<(NodeId, NodeId)> = Vec::with_capacity(y as usize);
        for j in 1..=y {
            let x = blocks::x_sequence(delta, k, j)?;
            let t1 = blocks::append_tree_xb(&mut b, delta, k, &x, PathVariant::One)?;
            let t2 = blocks::append_tree_xb(&mut b, delta, k, &x, PathVariant::One)?;
            labels.name(t1.root, format!("r{j},1,1"))?;
            labels.name(t2.root, format!("r{j},1,2"))?;
            labels.tag(t1.root, "heavy-roots");
            labels.tag(t2.root, "heavy-roots");
            for &n in &t1.nodes {
                labels.tag(n, format!("tree:{j},1,1"));
            }
            for &n in &t2.nodes {
                labels.tag(n, format!("tree:{j},1,2"));
            }
            heavy_roots.push((t1.root, t2.root));
        }

        // Step 3: the connecting paths r_{j,1} — r_{j,1,1} and r_{j,2} — r_{j,1,2}.
        for j in 1..=y {
            let (h1, h2) = heavy_roots[(j - 1) as usize];
            let r1 = labels.expect_node(&format!("r{j},1"));
            let r2 = labels.expect_node(&format!("r{j},2"));
            for (cycle_root, heavy_root) in [(r1, h1), (r2, h2)] {
                let mut prev = cycle_root;
                for step in 1..=k {
                    let q = b.add_node();
                    let prev_port = if step == 1 { d } else { 0 };
                    b.add_edge(prev, prev_port, q, 1)?;
                    prev = q;
                }
                let last_port = if k == 0 { d } else { 0 };
                b.add_edge(prev, last_port, heavy_root, d - 1)?;
            }
        }

        // Step 4: the Δ−1 pendant paths of length k+1 at each heavy root.
        for &(h1, h2) in &heavy_roots {
            for heavy_root in [h1, h2] {
                for c in 1..=d - 1 {
                    let mut prev = heavy_root;
                    for step in 1..=k + 1 {
                        let m = b.add_node();
                        let prev_port = if step == 1 { d - 1 + c } else { 1 };
                        b.add_edge(prev, prev_port, m, 0)?;
                        prev = m;
                    }
                }
            }
        }

        let graph = b.build()?;

        // Port swaps defining the member G_σ.
        let graph = match &sigma {
            None => graph,
            Some(sigma) => {
                let mut swaps = Vec::with_capacity(2 * sigma.len());
                for (j0, &s) in sigma.iter().enumerate() {
                    let (h1, h2) = heavy_roots[j0];
                    swaps.push((h1, d - 1, d - 1 + s));
                    swaps.push((h2, d - 1, d - 1 + s));
                }
                anet_graph::permute::swap_ports_many(&graph, &swaps)?
            }
        };

        Ok(UMember {
            sigma,
            labeled: LabeledGraph::new(graph, labels),
            y,
        })
    }
}

impl UMember {
    /// The cycle root `r_{j,b}`.
    pub fn cycle_root(&self, j: u64, b: u8) -> NodeId {
        self.labeled.node(&format!("r{j},{b}"))
    }

    /// The heavy root `r_{j,1,c}` (`c ∈ {1, 2}`).
    pub fn heavy_root(&self, j: u64, c: u8) -> NodeId {
        self.labeled.node(&format!("r{j},1,{c}"))
    }

    /// All cycle roots in cycle order `r_{1,1}, r_{1,2}, r_{2,1}, …`.
    pub fn cycle_roots(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(2 * self.y as usize);
        for j in 1..=self.y {
            out.push(self.cycle_root(j, 1));
            out.push(self.cycle_root(j, 2));
        }
        out
    }

    /// All heavy roots `r_{j,1,1}, r_{j,1,2}` in index order.
    pub fn heavy_roots(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(2 * self.y as usize);
        for j in 1..=self.y {
            out.push(self.heavy_root(j, 1));
            out.push(self.heavy_root(j, 2));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_views::{JointRefinement, Refinement};

    fn small_class() -> UClass {
        UClass::new(4, 1).unwrap()
    }

    fn some_sigma(class: &UClass, fill: u32) -> Vec<u32> {
        vec![fill; class.y() as usize]
    }

    #[test]
    fn class_size_matches_fact_3_1() {
        let class = small_class();
        assert_eq!(class.y(), 9);
        assert_eq!(class.size().unwrap(), 3u64.pow(9));
        assert!((class.log2_size() - 9.0 * 3f64.log2()).abs() < 1e-9);
        // Δ=4, k=2: |T| = 729, so |U| = 3^729 overflows but the log is fine.
        let big = UClass::new(4, 2).unwrap();
        assert!(big.size().is_err());
        assert!((big.log2_size() - 729.0 * 3f64.log2()).abs() < 1e-6);
    }

    #[test]
    fn parameters_validated() {
        assert!(UClass::new(3, 1).is_err());
        assert!(UClass::new(4, 0).is_err());
        let class = small_class();
        assert!(class.member(&[1, 2]).is_err());
        assert!(class.member(&some_sigma(&class, 5)).is_err());
        assert!(class.member_by_index(0).is_err());
    }

    #[test]
    fn template_degrees_match_the_construction() {
        let class = small_class();
        let u = class.template().unwrap();
        let g = &u.labeled.graph;
        let delta = class.delta;
        // Cycle roots have degree Δ+2; heavy roots have degree 2Δ−1; the maximum degree
        // of the graph is 2Δ−1 (as stated before Lemma 3.8 and in Theorem 3.11).
        for r in u.cycle_roots() {
            assert_eq!(g.degree(r), delta + 2);
        }
        for h in u.heavy_roots() {
            assert_eq!(g.degree(h), 2 * delta - 1);
        }
        assert_eq!(g.max_degree(), 2 * delta - 1);
        // Exactly 2y nodes of degree Δ+2 (the cycle roots) and 2y of degree 2Δ−1.
        let hist = g.degree_histogram();
        assert_eq!(hist[delta + 2], 2 * class.y() as usize);
        assert_eq!(hist[2 * delta - 1], 2 * class.y() as usize);
    }

    #[test]
    fn cycle_is_oriented_with_delta_plus_one_forward() {
        let class = small_class();
        let u = class.template().unwrap();
        let g = &u.labeled.graph;
        let d = class.delta as u32;
        let roots = u.cycle_roots();
        for idx in 0..roots.len() {
            let a = roots[idx];
            let next = roots[(idx + 1) % roots.len()];
            assert_eq!(g.neighbor(a, d + 1), Some((next, d - 1)));
        }
    }

    #[test]
    fn member_swaps_ports_at_heavy_roots_only() {
        let class = small_class();
        let template = class.template().unwrap();
        let mut sigma = some_sigma(&class, 1);
        sigma[3] = 2;
        let member = class.member(&sigma).unwrap();
        let gt = &template.labeled.graph;
        let gm = &member.labeled.graph;
        let d = class.delta as u32;
        // At heavy root r_{4,1,1} ports Δ−1 and Δ−1+2 are exchanged.
        let h = member.heavy_root(4, 1);
        assert_eq!(gm.neighbor(h, d - 1), gt.neighbor(h, d + 1));
        assert_eq!(gm.neighbor(h, d + 1), gt.neighbor(h, d - 1));
        // Cycle roots are untouched.
        for r in member.cycle_roots() {
            for p in 0..gm.degree(r) as u32 {
                assert_eq!(gm.neighbor(r, p), gt.neighbor(r, p));
            }
        }
        // Two members with different σ differ as graphs.
        let other = class.member(&some_sigma(&class, 1)).unwrap();
        assert_ne!(gm, &other.labeled.graph);
    }

    #[test]
    fn cycle_roots_share_views_below_k_proposition_3_2() {
        let class = small_class();
        let m = class.member(&some_sigma(&class, 2)).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(class.k));
        let roots = m.cycle_roots();
        for h in 0..class.k {
            for w in roots.windows(2) {
                assert!(r.same_view(w[0], w[1], h), "depth {h}");
            }
        }
    }

    #[test]
    fn no_unique_node_below_k_lemma_3_6() {
        let class = small_class();
        let m = class.member(&some_sigma(&class, 3)).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(class.k));
        for h in 0..class.k {
            assert!(
                r.unique_nodes_at(h).is_empty(),
                "ψ_S ≥ k requires no unique view at depth {h}"
            );
        }
    }

    #[test]
    fn every_cycle_root_is_unique_at_depth_k_lemma_3_8() {
        let class = small_class();
        let m = class.member(&some_sigma(&class, 1)).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(class.k));
        for root in m.cycle_roots() {
            assert!(r.is_unique(root, class.k), "cycle root {root} at depth k");
        }
    }

    #[test]
    fn heavy_roots_pair_up_at_depth_k_claim_1() {
        let class = small_class();
        let m = class.member(&some_sigma(&class, 2)).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(class.k));
        for j in 1..=class.y() {
            let h1 = m.heavy_root(j, 1);
            let h2 = m.heavy_root(j, 2);
            assert!(r.same_view(h1, h2, class.k), "j = {j}");
            assert_eq!(r.multiplicity(h1, class.k), 2, "j = {j}");
        }
        // Heavy roots of different indices are distinguishable at depth k.
        let a = m.heavy_root(1, 1);
        let c = m.heavy_root(2, 1);
        assert!(!r.same_view(a, c, class.k));
    }

    #[test]
    fn heavy_roots_look_the_same_across_members_theorem_3_11_ingredient() {
        let class = small_class();
        let mut sa = some_sigma(&class, 1);
        let mut sb = some_sigma(&class, 1);
        sa[4] = 1;
        sb[4] = 3; // the two members differ (only) in s_5
        let ga = class.member(&sa).unwrap();
        let gb = class.member(&sb).unwrap();
        let joint =
            JointRefinement::compute(&[&ga.labeled.graph, &gb.labeled.graph], Some(class.k));
        for j in 1..=class.y() {
            for c in [1u8, 2] {
                let va = ga.heavy_root(j, c);
                let vb = gb.heavy_root(j, c);
                assert!(
                    joint.same_view((0, va), (1, vb), class.k),
                    "r_{{{j},1,{c}}} must be indistinguishable across members at depth k"
                );
            }
        }
        // Yet the two graphs are different (the swap at r_{5,1,1} differs), which is
        // exactly why identical advice forces identical — hence wrong — outputs.
        assert_ne!(ga.labeled.graph, gb.labeled.graph);
    }

    #[test]
    fn member_by_index_round_trips_with_member() {
        let class = small_class();
        let by_idx = class.member_by_index(1).unwrap();
        let direct = class.member(&some_sigma(&class, 1)).unwrap();
        assert_eq!(by_idx.labeled.graph, direct.labeled.graph);
        let last = class.member_by_index(class.size().unwrap()).unwrap();
        let direct_last = class.member(&some_sigma(&class, 3)).unwrap();
        assert_eq!(last.labeled.graph, direct_last.labeled.graph);
    }
}
