//! # anet-constructions — the paper's lower-bound graph families
//!
//! This crate implements, node by node and port by port, every graph construction of
//! *"Four Shades of Deterministic Leader Election in Anonymous Networks"*:
//!
//! * [`blocks`] — Building Blocks 1–3 of Section 2.2.1: the rooted tree `T`, the
//!   augmented trees `T_X`, and the appended-path trees `T_{X,1}` / `T_{X,2}`;
//! * [`g_class`] — the class `G_{Δ,k}` (Section 2.2.1) used for the Selection
//!   advice lower bound (Theorem 2.9);
//! * [`u_class`] — the template `U` and class `U_{Δ,k}` (Section 3.1) used for the
//!   Port Election advice lower bound (Theorem 3.11);
//! * [`layers`] — the layer graphs `L_0, …, L_k` of Section 4.1 (Part 1);
//! * [`component`] — the component graph `H` (Part 2) and gadget `Ĥ` (Part 3);
//! * [`j_class`] — the template `J` (Part 4) and the class `J_{μ,k}` (Part 5) used for
//!   the PPE / CPPE advice lower bounds (Theorems 4.11 and 4.12);
//! * [`figures`] — exact instances of the graphs drawn in Figures 1–11 of the paper,
//!   with DOT export, for the figure-regeneration experiment;
//! * [`family`] — the [`GraphFamily`] abstraction turning each class into an iterable
//!   workload for the `ElectionEngine` batch runner and the experiment sweeps.
//!
//! Every builder returns a [`anet_graph::LabeledGraph`]: the anonymous network plus
//! role names (`r_{j,b}`, `c_m`, `ρ_i`, `w_{q,b}`, …) used by tests, oracles and the
//! paper's map-based algorithms. The builders validate the model invariants (ports
//! `0..deg` at every node, simplicity, connectivity), so a successful build is itself
//! evidence that the port-label bookkeeping of the paper's description is respected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod component;
pub mod family;
pub mod figures;
pub mod g_class;
pub mod j_class;
pub mod layers;
pub mod u_class;

pub use family::{FamilyInstance, GraphFamily};
pub use g_class::GClass;
pub use j_class::JClass;
pub use u_class::UClass;
