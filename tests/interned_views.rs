//! Shared-view integration tests across the workload families: the interned `View`
//! layer must agree with the owned `ViewTree` form on every `anet-workloads` graph
//! family (and the paper's constructions), and the refactored full-information
//! collector must stay bit-identical across the whole `Backend::smoke_set()`.

use four_shades::graph::PortGraph;
use four_shades::prelude::*;
use four_shades::sim::{Backend, ViewCollectorFactory};
use four_shades::views::{View, ViewInterner, ViewTree};
use four_shades::workloads::families::{
    CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily,
};

/// One small instance of every workload family (canonical and shuffled labellings)
/// plus a paper construction — the same topology spectrum the scenario grids sweep.
fn family_graphs() -> Vec<(String, PortGraph)> {
    let mut graphs: Vec<(String, PortGraph)> = Vec::new();
    let families: Vec<Box<dyn GraphFamily>> = vec![
        Box::new(RandomRegularFamily::new(3, vec![16], 0xA5EED)),
        Box::new(TorusFamily::new(vec![(3, 4)])),
        Box::new(TorusFamily::new(vec![(3, 4)]).shuffled(41)),
        Box::new(HypercubeFamily::new(vec![3])),
        Box::new(HypercubeFamily::new(vec![4]).shuffled(41)),
        Box::new(CirculantFamily::powers_of_two(vec![15], 3)),
        Box::new(CirculantFamily::powers_of_two(vec![15], 3).shuffled(41)),
        Box::new(four_shades::constructions::GClass::new(4, 1).unwrap()),
        Box::new(four_shades::constructions::UClass::new(4, 1).unwrap()),
    ];
    for family in families {
        for instance in family.instances(1) {
            graphs.push((instance.name, instance.graph));
        }
    }
    graphs
}

/// Owned and interned construction agree (structure, tokens, lexicographic order) on
/// every family.
#[test]
fn owned_and_interned_views_agree_on_all_families() {
    for (name, g) in family_graphs() {
        for depth in 0..=3usize {
            let shared = ViewInterner::new().build_all(&g, depth);
            let owned: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, depth)).collect();
            for v in g.nodes().step_by(1 + g.num_nodes() / 12) {
                let (s, o) = (&shared[v as usize], &owned[v as usize]);
                assert_eq!(s.to_tree(), *o, "{name}, node {v}, depth {depth}");
                assert_eq!(s.tokens(), o.tokens(), "{name}, node {v}, depth {depth}");
                for u in g.nodes().step_by(1 + g.num_nodes() / 8) {
                    assert_eq!(
                        s.lex_cmp(&shared[u as usize]),
                        o.lex_cmp(&owned[u as usize]),
                        "{name}: nodes {v} vs {u} at depth {depth}"
                    );
                }
            }
        }
    }
}

/// Interner canonicalness on every family: equal subtrees are one shared object, and
/// the fully symmetric canonical labellings collapse to one representative per depth.
#[test]
fn interner_collapses_equal_views_on_all_families() {
    for (name, g) in family_graphs() {
        let mut interner = ViewInterner::new();
        let views = interner.build_all(&g, 3);
        for (i, a) in views.iter().enumerate() {
            for b in &views[i..] {
                assert_eq!(a == b, View::ptr_eq(a, b), "{name}: equal ⇔ same pointer");
            }
        }
    }
    // Canonical (unshuffled) torus / hypercube / circulant: every node has the same
    // view, so the whole level is one object and the interner stays O(depth).
    for (name, g) in [
        ("torus", TorusFamily::generate(3, 4)),
        (
            "hypercube",
            four_shades::graph::generators::hypercube(3).unwrap(),
        ),
        ("circulant", CirculantFamily::generate(15, 3)),
    ] {
        let mut interner = ViewInterner::new();
        let views = interner.build_all(&g, 4);
        assert!(
            views.windows(2).all(|w| View::ptr_eq(&w[0], &w[1])),
            "{name}: symmetric family must collapse"
        );
        assert_eq!(interner.len(), 5, "{name}: one subtree per depth 0..=4");
    }
}

/// The refactored collector is backend-invariant on every family: identical views
/// (as structural equality of handles) and identical reports across the smoke set,
/// and identical to the direct combinatorial construction.
#[test]
fn collector_is_backend_invariant_on_all_families() {
    for (name, g) in family_graphs() {
        let rounds = 2;
        let seq = Backend::Sequential.run(&g, &ViewCollectorFactory, rounds);
        for v in g.nodes().step_by(1 + g.num_nodes() / 10) {
            assert_eq!(
                seq.outputs[v as usize],
                View::build(&g, v, rounds),
                "{name}, node {v}"
            );
        }
        for backend in Backend::smoke_set() {
            let out = backend.run(&g, &ViewCollectorFactory, rounds);
            assert_eq!(out.outputs, seq.outputs, "{name} on {backend}");
            assert_eq!(out.report, seq.report, "{name} on {backend}");
        }
    }
}

/// Engine runs stay bit-identical to sequential across the smoke set now that view
/// messages are shared handles (outputs, rounds, messages, leader).
#[test]
fn engine_reports_stay_backend_invariant_with_shared_views() {
    for (name, g) in family_graphs() {
        let seq = match Election::task(Task::PortElection)
            .solver(MapSolver::default())
            .run(&g)
        {
            Ok(report) => report,
            // Infeasible (symmetric) instances refuse identically on every backend.
            Err(_) => {
                for backend in Backend::smoke_set() {
                    assert!(
                        Election::task(Task::PortElection)
                            .solver(MapSolver::default())
                            .backend(backend)
                            .run(&g)
                            .is_err(),
                        "{name} on {backend}"
                    );
                }
                continue;
            }
        };
        for backend in Backend::smoke_set() {
            let report = Election::task(Task::PortElection)
                .solver(MapSolver::default())
                .backend(backend)
                .run(&g)
                .unwrap();
            assert_eq!(report.outputs, seq.outputs, "{name} on {backend}");
            assert_eq!(report.rounds, seq.rounds, "{name} on {backend}");
            assert_eq!(
                report.messages_delivered, seq.messages_delivered,
                "{name} on {backend}"
            );
            assert_eq!(report.leader(), seq.leader(), "{name} on {backend}");
        }
    }
}
