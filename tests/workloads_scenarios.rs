//! End-to-end tests of the `anet-workloads` subsystem against the engine facade:
//! engine-equivalence across every backend on the new families, the smoke grid
//! through the sweep driver, and the emitted `BENCH_*.json` read back with the
//! in-tree parser.

use four_shades::prelude::*;
use four_shades::workloads::json::Json;
use four_shades::workloads::sweep::{read_bench_json, run_sweep, SweepConfig};
use four_shades::workloads::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};

/// One representative instance per new family (seed-shuffled where the canonical
/// labelling is symmetric, so election is feasible).
fn representative_instances() -> Vec<FamilyInstance> {
    let families: Vec<Box<dyn GraphFamily>> = vec![
        Box::new(RandomRegularFamily::new(3, vec![16], 0xA5EED)),
        Box::new(TorusFamily::new(vec![(3, 4)]).shuffled(41)),
        Box::new(HypercubeFamily::new(vec![3]).shuffled(41)),
        Box::new(CirculantFamily::powers_of_two(vec![15], 3).shuffled(41)),
    ];
    families.iter().map(|f| f.instances(1).remove(0)).collect()
}

#[test]
fn engine_equivalence_on_new_families_across_the_smoke_set() {
    // Acceptance: on every new family, every backend of `Backend::smoke_set()` must
    // produce identical outputs, rounds, messages and leader for every task shade.
    for instance in representative_instances() {
        let g = &instance.graph;
        for task in Task::ALL {
            let seq = Election::task(task)
                .solver(MapSolver::default())
                .backend(Backend::Sequential)
                .run(g)
                .unwrap_or_else(|e| panic!("{}: {task}: {e}", instance.name));
            assert!(seq.solved(), "{}: {task}: {}", instance.name, seq.summary());
            for backend in Backend::smoke_set() {
                let report = Election::task(task)
                    .solver(MapSolver::default())
                    .backend(backend)
                    .run(g)
                    .unwrap();
                assert_eq!(
                    report.outputs, seq.outputs,
                    "{}: {task} on {backend}",
                    instance.name
                );
                assert_eq!(
                    report.rounds, seq.rounds,
                    "{}: {task} on {backend}",
                    instance.name
                );
                assert_eq!(
                    report.messages_delivered, seq.messages_delivered,
                    "{}: {task} on {backend}",
                    instance.name
                );
                assert_eq!(
                    report.leader(),
                    seq.leader(),
                    "{}: {task} on {backend}",
                    instance.name
                );
            }
        }
    }
}

#[test]
fn smoke_grid_runs_all_four_shades_on_all_four_families_and_emits_json() {
    // Acceptance: `sweep --smoke` runs all four shades on ≥ 4 new families and writes
    // a well-formed BENCH_*.json. This is the same code path the binary takes.
    let registry = ScenarioRegistry::smoke();
    let out_dir = std::env::temp_dir().join("anet-workloads-e2e-smoke");
    let _ = std::fs::remove_dir_all(&out_dir);
    let config = SweepConfig {
        out_dir: out_dir.clone(),
        label: "smoke".to_string(),
        ..SweepConfig::default()
    };
    let outcome = run_sweep(&registry, &config).expect("sweep runs");
    assert!(
        outcome
            .json_path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("BENCH_"),
        "{:?}",
        outcome.json_path
    );

    let doc = read_bench_json(&outcome.json_path).expect("emitted JSON is well-formed");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(four_shades::workloads::SCHEMA)
    );
    let cells = doc.get("cells").and_then(Json::as_array).expect("cells");
    assert_eq!(cells.len(), outcome.cells);

    // v2: every solved advice cell (either codec) reports both encoded-view sizes.
    // (The tree-vs-dag size relation itself is asserted in tests/dag_view_codec.rs.)
    let advice_cells: Vec<_> = cells
        .iter()
        .filter(|c| {
            c.get("solver")
                .and_then(Json::as_str)
                .is_some_and(|s| s.starts_with("advice"))
                && c.get("solved") == Some(&Json::Bool(true))
        })
        .collect();
    assert!(!advice_cells.is_empty(), "smoke grid has advice scenarios");
    for cell in advice_cells {
        let tree = cell.get("advice_tree_bits").and_then(Json::as_int);
        let dag = cell.get("advice_dag_bits").and_then(Json::as_int);
        assert!(tree.is_some() && dag.is_some(), "{cell:?}");
    }

    // All four shades × all four families appear among the cells, and every cell of
    // the smoke grid solves (the shuffled labellings are feasible by construction of
    // the pinned seeds).
    let mut seen: std::collections::BTreeSet<(String, String)> = Default::default();
    for cell in cells {
        let family = cell.get("family").and_then(Json::as_str).unwrap();
        let task = cell.get("task").and_then(Json::as_str).unwrap();
        assert_eq!(
            cell.get("solved"),
            Some(&Json::Bool(true)),
            "{family}/{task}: {:?}",
            cell.get("error")
        );
        let family_kind = family.split(['(', ',']).next().unwrap().to_string();
        seen.insert((family_kind, task.to_string()));
    }
    let families: std::collections::BTreeSet<&str> = seen.iter().map(|(f, _)| f.as_str()).collect();
    assert_eq!(families.len(), 4, "{families:?}");
    for task in ["S", "PE", "PPE", "CPPE"] {
        for family in &families {
            assert!(
                seen.contains(&(family.to_string(), task.to_string())),
                "missing {family} × {task}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn standard_grid_strong_shades_reach_ten_thousand_nodes() {
    // Acceptance for the class-quotient path search: the standard grid no longer
    // caps the strong shades at small instances — at least one PPE/CPPE cell must
    // sweep a graph with ≥ 10⁴ nodes (where the old simple-path enumeration was
    // hopeless beyond ~25 nodes).
    let registry = ScenarioRegistry::standard();
    let strong: Vec<_> = registry
        .iter()
        .filter(|s| {
            matches!(
                s.task,
                Task::PortPathElection | Task::CompletePortPathElection
            )
        })
        .collect();
    assert!(!strong.is_empty(), "standard grid has strong-shade cells");
    let has_large = strong.iter().any(|s| {
        s.materialize()
            .iter()
            .any(|i| i.graph.num_nodes() >= 10_000)
    });
    assert!(
        has_large,
        "standard grid must contain a strong-shade cell with >= 10^4 nodes"
    );
    // The smoke grid is untouched by the cap removal: the original 40 scenarios
    // plus the wire axis (three metered codecs + one capped backend).
    assert_eq!(ScenarioRegistry::smoke().len(), 44);
}

#[test]
fn sweep_cells_are_deterministic_across_runs() {
    // Two runs of the same scenario produce identical measured quantities (wall time
    // aside): families are seed-deterministic and the engine is deterministic.
    let registry = ScenarioRegistry::smoke();
    let scenario = registry
        .select("/CPPE/map/seq")
        .into_iter()
        .next()
        .expect("smoke grid has CPPE scenarios");
    let a = scenario.run();
    let b = scenario.run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.instance, y.instance);
        assert_eq!(x.rounds(), y.rounds());
        let (rx, ry) = (x.report.as_ref().unwrap(), y.report.as_ref().unwrap());
        assert_eq!(rx.outputs, ry.outputs);
        assert_eq!(rx.messages_delivered, ry.messages_delivered);
    }
}

#[test]
fn prelude_exposes_the_workloads_surface() {
    // Scenario/ScenarioRegistry/SolverSpec are one `use four_shades::prelude::*` away.
    let mut registry = ScenarioRegistry::new();
    registry
        .register(Scenario::new(
            RandomRegularFamily::new(4, vec![21], 3),
            Task::PortElection,
            SolverSpec::Map,
            Backend::Parallel { threads: 2 },
            1,
        ))
        .unwrap();
    let rows = registry.iter().next().unwrap().run();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].solved(), "{:?}", rows[0].report);
}
