//! Transport equivalence: the metered wire path (tentpole of the bit-metering PR)
//! must be an *observer*, never an *actor*. Putting a codec on the wire — or
//! capping the per-edge bandwidth CONGEST-style — may change what the report says
//! about bits and physical rounds, but never which leader is elected, what each
//! node outputs, or how many messages the algorithm exchanged.
//!
//! Three pressure points:
//! * metering on vs off across every backend of `Backend::smoke_set()` and every
//!   task shade — bit-identical verdicts and reports modulo the new wire fields,
//! * `Backend::Capped` with a generous budget vs the uncapped run — the stream
//!   degenerates to one physical round per logical round,
//! * the accounting itself — per-round sums, per-edge sums, and the total must
//!   all reconcile, capped or not.

use four_shades::election::engine::MessageCodec;
use four_shades::prelude::*;
use four_shades::workloads::{RandomRegularFamily, TorusFamily};

/// Small, irregular-enough instances: one random 3-regular graph and one
/// seed-shuffled torus, the same shapes the smoke grid's wire axis pins.
fn wire_instances() -> Vec<FamilyInstance> {
    let families: Vec<Box<dyn GraphFamily>> = vec![
        Box::new(RandomRegularFamily::new(3, vec![16], 0xA5EED)),
        Box::new(TorusFamily::new(vec![(3, 4)]).shuffled(41)),
    ];
    families.iter().map(|f| f.instances(1).remove(0)).collect()
}

/// Everything the election *algorithm* determines, with the transport-dependent
/// observables (timing, wire stats, physical round count under a cap) left out.
fn verdict(report: &ElectionReport) -> (bool, Option<u32>, Vec<NodeOutput>, usize) {
    (
        report.solved(),
        report.leader(),
        report.outputs.clone(),
        report.messages_delivered,
    )
}

#[test]
fn metering_changes_nothing_but_the_wire_fields_across_the_smoke_set() {
    for instance in wire_instances() {
        let g = &instance.graph;
        for task in Task::ALL {
            let plain = Election::task(task)
                .solver(MapSolver::default())
                .backend(Backend::Sequential)
                .run(g)
                .unwrap_or_else(|e| panic!("{}: {task}: {e}", instance.name));
            assert!(plain.wire.is_none(), "unmetered runs carry no wire stats");
            for backend in Backend::smoke_set() {
                for codec in MessageCodec::ALL {
                    let metered = Election::task(task)
                        .solver(MapSolver::default())
                        .backend(backend)
                        .metered(codec)
                        .run(g)
                        .unwrap();
                    let ctx = format!("{}: {task} on {backend} via {codec}", instance.name);
                    assert_eq!(verdict(&metered), verdict(&plain), "{ctx}");
                    assert_eq!(metered.rounds, plain.rounds, "{ctx}");
                    let wire = metered.wire.as_ref().unwrap_or_else(|| panic!("{ctx}"));
                    assert_eq!(wire.codec, codec, "{ctx}");
                    assert_eq!(wire.bits_per_edge_cap, None, "{ctx}");
                    assert!(wire.total_bits() > 0, "{ctx}: something crossed the wire");
                }
            }
        }
    }
}

#[test]
fn a_generous_cap_degenerates_to_the_uncapped_run() {
    // A budget at least as large as the biggest single-edge round payload means
    // every logical round fits in one physical round: the capped report must
    // match the uncapped metered report bit for bit, cap field aside.
    for instance in wire_instances() {
        let g = &instance.graph;
        let uncapped = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .metered(MessageCodec::default())
            .run(g)
            .unwrap();
        let wire = uncapped.wire.as_ref().unwrap();
        // Total bits over the whole run certainly bounds any per-round payload.
        let generous = wire.total_bits().max(1);
        let capped = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .backend(Backend::capped(generous))
            .run(g)
            .unwrap();
        let ctx = &instance.name;
        assert_eq!(verdict(&capped), verdict(&uncapped), "{ctx}");
        assert_eq!(capped.rounds, uncapped.rounds, "{ctx}: no inflation");
        let capped_wire = capped.wire.as_ref().unwrap();
        assert_eq!(capped_wire.bits_per_edge_cap, Some(generous), "{ctx}");
        assert_eq!(capped_wire.total_bits(), wire.total_bits(), "{ctx}");
        assert_eq!(capped_wire.per_round_bits, wire.per_round_bits, "{ctx}");
        assert_eq!(capped_wire.per_edge_bits, wire.per_edge_bits, "{ctx}");
    }
}

#[test]
fn a_tight_cap_inflates_rounds_but_not_the_verdict() {
    for instance in wire_instances() {
        let g = &instance.graph;
        let plain = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(g)
            .unwrap();
        for cap in [1u64, 8, 64] {
            let capped = Election::task(Task::Selection)
                .solver(MapSolver::default())
                .backend(Backend::capped(cap))
                .run(g)
                .unwrap();
            let ctx = format!("{} under cap {cap}", instance.name);
            assert_eq!(verdict(&capped), verdict(&plain), "{ctx}");
            assert!(capped.rounds >= plain.rounds, "{ctx}");
            let wire = capped.wire.as_ref().unwrap();
            // The cap is a hard per-edge limit: no physical round may move more
            // than cap bits across each of the 2m directed edges.
            let edges = wire.per_edge_bits.len() as u64;
            for (round, &bits) in wire.per_round_bits.iter().enumerate() {
                assert!(
                    bits <= cap * edges,
                    "{ctx}: round {} moved {bits} bits",
                    round + 1
                );
            }
        }
    }
}

#[test]
fn per_round_and_per_edge_accounting_reconcile() {
    // The same bits are tallied on two independent axes (when they crossed and
    // where they crossed); the books must balance on every codec and under caps.
    for instance in wire_instances() {
        let g = &instance.graph;
        let mut runs = Vec::new();
        for codec in MessageCodec::ALL {
            runs.push(
                Election::task(Task::Selection)
                    .solver(MapSolver::default())
                    .metered(codec)
                    .run(g)
                    .unwrap(),
            );
        }
        runs.push(
            Election::task(Task::Selection)
                .solver(MapSolver::default())
                .backend(Backend::capped(16))
                .metered(MessageCodec::Delta)
                .run(g)
                .unwrap(),
        );
        for report in &runs {
            let wire = report.wire.as_ref().unwrap();
            let by_round: u64 = wire.per_round_bits.iter().sum();
            let by_edge: u64 = wire.per_edge_bits.iter().sum();
            let ctx = format!("{} via {}", instance.name, wire.codec);
            assert_eq!(by_round, wire.total_bits(), "{ctx}");
            assert_eq!(by_edge, wire.per_edge_total(), "{ctx}");
            assert_eq!(by_round, by_edge, "{ctx}: the two axes tally the same bits");
            assert_eq!(
                wire.per_round_bits.len(),
                report.rounds,
                "{ctx}: one entry per physical round"
            );
        }
    }
}

#[test]
fn advice_pairs_meter_their_wire_too() {
    // The advice framework rides the same transport seam: Theorem 2.2's pair,
    // metered, must elect the same leader with the same advice string.
    let g = TorusFamily::new(vec![(3, 4)])
        .shuffled(41)
        .instances(1)
        .remove(0)
        .graph;
    let plain = Election::task(Task::Selection)
        .solver(AdviceSolver::theorem_2_2())
        .run(&g)
        .unwrap();
    for codec in MessageCodec::ALL {
        let metered = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .metered(codec)
            .run(&g)
            .unwrap();
        assert_eq!(verdict(&metered), verdict(&plain), "{codec}");
        assert_eq!(metered.advice_bits, plain.advice_bits, "{codec}");
        assert!(metered.wire.as_ref().unwrap().total_bits() > 0, "{codec}");
    }
}
