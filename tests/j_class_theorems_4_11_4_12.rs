//! Experiment E5 as a test: the structural ingredients of Theorems 4.11 / 4.12 on the
//! *full* template of `J_{2,4}` (1024 gadgets, ≈132k nodes) and on members obtained by
//! the Part 5 port swaps, plus the Lemma 4.8 CPPE algorithm on capped chains.
//!
//! These are the heaviest tests of the suite (a few seconds each in the default `dev`
//! profile thanks to `opt-level = 1`).

use four_shades::constructions::component::Side;
use four_shades::constructions::JClass;
use four_shades::election::cppe::solve_cppe_on_j;
use four_shades::election::tasks::{verify, NodeOutput, Task};
use four_shades::views::paths::cppe_sequence_is_valid;
use four_shades::views::{JointRefinement, Refinement};

fn class() -> JClass {
    JClass::new(2, 4).unwrap()
}

#[test]
fn full_template_has_no_unique_view_below_k_lemmas_4_6_and_4_7() {
    let class = class();
    let template = class.template(None).unwrap();
    assert_eq!(template.num_gadgets(), 1024);
    let g = &template.labeled.graph;
    assert_eq!(g.num_nodes(), 1024 * 129);
    let r = Refinement::compute(g, Some(class.k - 1));
    for h in 0..class.k {
        assert!(
            r.unique_nodes_at(h).is_empty(),
            "no node may have a unique view at depth {h} < k (Lemma 4.6) — ψ_S ≥ k (Lemma 4.7)"
        );
    }
    // Proposition 4.4: all ρ nodes share the same view below depth k.
    for i in [1usize, 17, 512, 1023] {
        assert!(r.same_view(template.rho(0), template.rho(i), class.k - 1));
    }
}

#[test]
fn members_differ_as_graphs_but_corner_views_agree_lemma_4_10_part_1() {
    let class = class();
    // Two members whose defining sequences differ in bit 3 (gadgets 3 and 1020 swap).
    let mut ya = vec![false; 8];
    let mut yb = vec![false; 8];
    ya[3] = true;
    yb[5] = true;
    let ja = class.member(&ya, None).unwrap();
    let jb = class.member(&yb, None).unwrap();
    assert_ne!(
        ja.labeled.graph, jb.labeled.graph,
        "different Y ⇒ different graphs"
    );

    // Part 5 swaps really were applied where they should be.
    let ga = &ja.labeled.graph;
    let gt = class.template(None).unwrap();
    let g0 = &gt.labeled.graph;
    let rho3 = ja.rho(3);
    // Ports 2μ..3μ−1 (H_R block) and 3μ..4μ−1 (H_B block) are exchanged at ρ_3 in J_a.
    assert_eq!(ga.neighbor(rho3, 4), g0.neighbor(rho3, 6));
    assert_eq!(ga.neighbor(rho3, 6), g0.neighbor(rho3, 4));
    // And the mirror gadget 1023−3 = 1020 has its H_L / H_T blocks exchanged.
    let rho_mirror = ja.rho(1020);
    assert_eq!(ga.neighbor(rho_mirror, 0), g0.neighbor(rho_mirror, 2));

    // Lemma 4.10(1): the corner border node w_{1,1} in H_L of Ĥ_0 cannot tell the two
    // members apart within k rounds.
    let joint = JointRefinement::compute(&[ga, &jb.labeled.graph], Some(class.k));
    let va = ja.w(0, Side::Left, 1, 1);
    let vb = jb.w(0, Side::Left, 1, 1);
    assert!(joint.same_view((0, va), (1, vb), class.k));
}

#[test]
fn cppe_algorithm_is_correct_on_capped_chains_and_sampled_on_long_ones() {
    let class = class();

    // Full verification on a 32-gadget chain.
    let member = class.template(Some(32)).unwrap();
    let g = &member.labeled.graph;
    let run = solve_cppe_on_j(&member, class.k).unwrap();
    assert_eq!(run.rounds, class.k);
    let outcome = verify(Task::CompletePortPathElection, g, &run.outputs).unwrap();
    assert_eq!(outcome.leader, member.rho(0));

    // Sampled verification on a 128-gadget chain (full verification would walk Θ(n²)
    // path entries — the task's outputs are inherently that large).
    let member = class.template(Some(128)).unwrap();
    let g = &member.labeled.graph;
    let run = solve_cppe_on_j(&member, class.k).unwrap();
    let leader = member.rho(0);
    assert_eq!(run.outputs[leader as usize], NodeOutput::Leader);
    // Check every gadget centre and an arithmetic sample of ordinary nodes.
    let mut checked = 0usize;
    for i in 1..member.num_gadgets() {
        let v = member.rho(i);
        let NodeOutput::FullPath(pairs) = &run.outputs[v as usize] else {
            panic!("ρ_{i} must output a path");
        };
        assert!(cppe_sequence_is_valid(g, v, pairs, leader), "ρ_{i}");
        checked += 1;
    }
    for v in g.nodes().step_by(97) {
        if v == leader {
            continue;
        }
        let NodeOutput::FullPath(pairs) = &run.outputs[v as usize] else {
            panic!("node {v} must output a path");
        };
        assert!(cppe_sequence_is_valid(g, v, pairs, leader), "node {v}");
        checked += 1;
    }
    assert!(checked > 200);
}

#[test]
fn border_encoding_matches_the_gadget_indices_on_a_long_chain() {
    let class = class();
    let member = class.template(Some(64)).unwrap();
    let g = &member.labeled.graph;
    let deg = |v| g.degree(v);
    for i in 1..member.num_gadgets() {
        assert_eq!(member.encoded_w(&deg, i, Side::Top), i as u64);
        assert_eq!(member.encoded_w(&deg, i, Side::Left), i as u64);
        assert_eq!(member.encoded_w(&deg, i - 1, Side::Bottom), i as u64);
        assert_eq!(member.encoded_w(&deg, i - 1, Side::Right), i as u64);
    }
}
