//! Property-based tests (proptest) on the core data structures and invariants:
//! random port-numbered graphs, views, refinement, encodings, port permutations,
//! the LOCAL simulator, and the election verifiers.

use four_shades::election::map_algorithms::solve_with_map;
use four_shades::election::selection::solve_selection_min_time;
use four_shades::election::tasks::{verify, weaken_outputs, Task};
use four_shades::graph::{generators, permute, PortGraph};
use four_shades::sim::{run, ViewCollectorFactory};
use four_shades::views::election_index::{compute_all, feasibility, psi_s};
use four_shades::views::encoding::{decode_view, encode_view};
use four_shades::views::{Refinement, ViewTree};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Strategy: parameters of a random connected port-numbered graph.
fn graph_params() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (4usize..18, 3usize..6, 0usize..8, any::<u64>())
}

fn build(params: (usize, usize, usize, u64)) -> PortGraph {
    let (n, max_deg, extra, seed) = params;
    generators::random_connected(n, max_deg, extra, seed).expect("generator produces valid graphs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator must always satisfy the model invariants (they are re-validated by
    /// `PortGraph::from_adjacency`, so re-building from the raw adjacency must succeed).
    #[test]
    fn generated_graphs_are_valid((n, d, e, s) in graph_params()) {
        let g = build((n, d, e, s));
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert!(g.max_degree() <= d);
        let rebuilt = PortGraph::from_adjacency(g.clone().into_adjacency()).unwrap();
        prop_assert_eq!(rebuilt, g);
    }

    /// Refinement classes coincide with explicit view-tree equality at every depth.
    #[test]
    fn refinement_equals_view_tree_equality(params in graph_params(), depth in 0usize..4) {
        let g = build(params);
        let r = Refinement::compute(&g, Some(depth));
        let views: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, depth)).collect();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    r.same_view(u, v, depth),
                    views[u as usize] == views[v as usize],
                    "nodes {} and {} at depth {}", u, v, depth
                );
            }
        }
    }

    /// View encoding round-trips for every node and depth.
    #[test]
    fn view_encoding_round_trips(params in graph_params(), depth in 0usize..4) {
        let g = build(params);
        for v in g.nodes() {
            let view = ViewTree::build(&g, v, depth);
            let bits = encode_view(&view, depth);
            let (decoded, h) = decode_view(&bits).unwrap();
            prop_assert_eq!(h, depth);
            prop_assert_eq!(decoded, view);
        }
    }

    /// Relabelling nodes (a port-preserving isomorphism) changes nothing an anonymous
    /// algorithm can observe: feasibility, ψ_S and the multiset of view classes.
    #[test]
    fn node_relabelling_is_invisible(params in graph_params()) {
        let g = build(params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(params.3 ^ 0xABCD);
        let mut perm: Vec<u32> = (0..g.num_nodes() as u32).collect();
        perm.shuffle(&mut rng);
        let h = permute::relabel_nodes(&g, &perm).unwrap();
        prop_assert!(permute::is_port_isomorphism(&g, &h, &perm));
        prop_assert_eq!(psi_s(&g), psi_s(&h));
        prop_assert_eq!(feasibility(&g).feasible, feasibility(&h).feasible);
        let rg = Refinement::compute(&g, Some(2));
        let rh = Refinement::compute(&h, Some(2));
        prop_assert_eq!(rg.num_classes_at(2), rh.num_classes_at(2));
    }

    /// The LOCAL simulator's full-information collector assembles exactly `B^r(v)`.
    #[test]
    fn simulator_collects_exact_views(params in graph_params(), rounds in 0usize..3) {
        let g = build(params);
        let outcome = run(&g, &ViewCollectorFactory, rounds);
        for v in g.nodes() {
            prop_assert_eq!(
                &outcome.outputs[v as usize],
                &ViewTree::build(&g, v, rounds)
            );
        }
    }

    /// Fact 1.1 (the hierarchy) holds on random graphs, and all four tasks, when
    /// solvable, are solved correctly by the map-based baseline in exactly their index.
    #[test]
    fn hierarchy_and_map_baseline_agree(params in graph_params()) {
        let g = build(params);
        let idx = compute_all(&g, 50_000).unwrap();
        prop_assert!(idx.satisfies_hierarchy());
        for (task, expected) in [
            (Task::Selection, idx.s),
            (Task::PortElection, idx.pe),
            (Task::PortPathElection, idx.ppe),
            (Task::CompletePortPathElection, idx.cppe),
        ] {
            match solve_with_map(&g, task, 50_000) {
                Ok(run) => {
                    prop_assert_eq!(Some(run.rounds), expected);
                    prop_assert!(verify(task, &g, &run.outputs).is_ok());
                }
                Err(_) => prop_assert_eq!(expected, None),
            }
        }
    }

    /// A correct CPPE solution, weakened per Fact 1.1, stays correct for every weaker
    /// task.
    #[test]
    fn weakenings_preserve_correctness(params in graph_params()) {
        let g = build(params);
        if let Ok(run) = solve_with_map(&g, Task::CompletePortPathElection, 50_000) {
            for task in [Task::PortPathElection, Task::PortElection, Task::Selection] {
                let weak = weaken_outputs(&run.outputs, task).unwrap();
                prop_assert!(verify(task, &g, &weak).is_ok());
            }
        }
    }

    /// Theorem 2.2 end to end on random graphs: whenever ψ_S is finite, the oracle and
    /// algorithm solve Selection in exactly ψ_S rounds.
    #[test]
    fn selection_with_advice_on_random_graphs(params in graph_params()) {
        let g = build(params);
        if let Some(psi) = psi_s(&g) {
            let run = solve_selection_min_time(&g);
            prop_assert_eq!(run.rounds, psi);
            prop_assert!(verify(Task::Selection, &g, &run.outputs).is_ok());
        }
    }

    /// Swapping two ports at a node and swapping them back restores the original graph.
    #[test]
    fn port_swaps_are_involutions(params in graph_params(), node_pick in any::<u32>(), p1 in 0u32..6, p2 in 0u32..6) {
        let g = build(params);
        let v = node_pick % g.num_nodes() as u32;
        let deg = g.degree(v) as u32;
        if deg >= 2 {
            let (a, b) = (p1 % deg, p2 % deg);
            let once = permute::swap_ports(&g, v, a, b).unwrap();
            let twice = permute::swap_ports(&once, v, a, b).unwrap();
            prop_assert_eq!(twice, g);
        }
    }
}
