//! Randomised property tests on the core data structures and invariants: random
//! port-numbered graphs, views, refinement, encodings, port permutations, the LOCAL
//! simulator backends, and the election verifiers.
//!
//! No external property-testing framework is available in this build environment, so
//! the properties are driven by explicit seed loops over the deterministic
//! [`four_shades::graph::rng::Rng`]: every case is reproducible from its loop index.

use four_shades::graph::rng::Rng;
use four_shades::graph::{generators, permute, PortGraph};
use four_shades::prelude::*;
use four_shades::sim::{Backend, ViewCollectorFactory};
use four_shades::views::election_index::{compute_all, feasibility, psi_s};
use four_shades::views::encoding::{decode_view, encode_view};
use four_shades::views::{Refinement, ViewTree};

const CASES: u64 = 32;

/// Derive random-graph parameters (n ∈ [4, 18), Δ ∈ [3, 6), extra ∈ [0, 8)) from a
/// case index, plus the seed for the generator itself.
fn params(case: u64) -> (usize, usize, usize, u64) {
    let mut rng = Rng::seed(0xF0_0D ^ case);
    (
        rng.gen_range(4..18),
        rng.gen_range(3..6),
        rng.gen_range(0..8),
        rng.next_u64(),
    )
}

fn build(case: u64) -> PortGraph {
    let (n, max_deg, extra, seed) = params(case);
    generators::random_connected(n, max_deg, extra, seed).expect("generator produces valid graphs")
}

/// The generator must always satisfy the model invariants (they are re-validated by
/// `PortGraph::from_adjacency`, so re-building from the raw adjacency must succeed).
#[test]
fn generated_graphs_are_valid() {
    for case in 0..CASES {
        let (n, max_deg, _, _) = params(case);
        let g = build(case);
        assert_eq!(g.num_nodes(), n);
        assert!(g.max_degree() <= max_deg);
        let rebuilt = PortGraph::from_adjacency(g.clone().into_adjacency()).unwrap();
        assert_eq!(rebuilt, g, "case {case}");
    }
}

/// Refinement classes coincide with explicit view-tree equality at every depth.
#[test]
fn refinement_equals_view_tree_equality() {
    for case in 0..CASES / 2 {
        let g = build(case);
        let depth = (case % 4) as usize;
        let r = Refinement::compute(&g, Some(depth));
        let views: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, depth)).collect();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    r.same_view(u, v, depth),
                    views[u as usize] == views[v as usize],
                    "case {case}: nodes {u} and {v} at depth {depth}"
                );
            }
        }
    }
}

/// View encoding round-trips for every node and depth.
#[test]
fn view_encoding_round_trips() {
    for case in 0..CASES / 2 {
        let g = build(case);
        let depth = (case % 4) as usize;
        for v in g.nodes() {
            let view = ViewTree::build(&g, v, depth);
            let bits = encode_view(&view, depth);
            let (decoded, h) = decode_view(&bits).unwrap();
            assert_eq!(h, depth, "case {case}");
            assert_eq!(decoded, view, "case {case}, node {v}");
        }
    }
}

/// Relabelling nodes (a port-preserving isomorphism) changes nothing an anonymous
/// algorithm can observe: feasibility, ψ_S and the multiset of view classes.
#[test]
fn node_relabelling_is_invisible() {
    for case in 0..CASES {
        let g = build(case);
        let mut rng = Rng::seed(params(case).3 ^ 0xABCD);
        let mut perm: Vec<u32> = (0..g.num_nodes() as u32).collect();
        rng.shuffle(&mut perm);
        let h = permute::relabel_nodes(&g, &perm).unwrap();
        assert!(permute::is_port_isomorphism(&g, &h, &perm), "case {case}");
        assert_eq!(psi_s(&g), psi_s(&h), "case {case}");
        assert_eq!(
            feasibility(&g).feasible,
            feasibility(&h).feasible,
            "case {case}"
        );
        let rg = Refinement::compute(&g, Some(2));
        let rh = Refinement::compute(&h, Some(2));
        assert_eq!(rg.num_classes_at(2), rh.num_classes_at(2), "case {case}");
    }
}

/// The LOCAL simulator's full-information collector assembles exactly `B^r(v)` — as a
/// shared `View` handle structurally identical to the owned construction — on every
/// execution backend.
#[test]
fn simulator_collects_exact_views() {
    for case in 0..CASES / 2 {
        let g = build(case);
        let rounds = (case % 3) as usize;
        for backend in Backend::smoke_set() {
            let outcome = backend.run(&g, &ViewCollectorFactory, rounds);
            for v in g.nodes() {
                assert_eq!(
                    outcome.outputs[v as usize].to_tree(),
                    ViewTree::build(&g, v, rounds),
                    "case {case}, node {v}, backend {backend}"
                );
            }
        }
    }
}

/// Fact 1.1 (the hierarchy) holds on random graphs, and all four tasks, when
/// solvable, are solved correctly through the `ElectionEngine` in exactly their
/// index.
#[test]
fn hierarchy_and_engine_map_baseline_agree() {
    for case in 0..CASES / 2 {
        let g = build(case);
        let idx = compute_all(&g, 50_000).unwrap();
        assert!(idx.satisfies_hierarchy(), "case {case}");
        for (task, expected) in [
            (Task::Selection, idx.s),
            (Task::PortElection, idx.pe),
            (Task::PortPathElection, idx.ppe),
            (Task::CompletePortPathElection, idx.cppe),
        ] {
            match Election::task(task).solver(MapSolver::default()).run(&g) {
                Ok(report) => {
                    assert_eq!(Some(report.rounds), expected, "case {case}, {task}");
                    assert!(report.solved(), "case {case}, {task}");
                }
                Err(_) => assert_eq!(expected, None, "case {case}, {task}"),
            }
        }
    }
}

/// A correct CPPE solution, weakened per Fact 1.1, stays correct for every weaker
/// task: the same outputs are transformed with `weaken_outputs` and re-verified
/// (this exercises the weakening itself, not the map solver's native weaker-shade
/// solutions).
#[test]
fn weakenings_preserve_correctness() {
    use four_shades::election::tasks::{verify, weaken_outputs};
    for case in 0..CASES / 2 {
        let g = build(case);
        let Ok(report) = Election::task(Task::CompletePortPathElection)
            .solver(MapSolver::default())
            .run(&g)
        else {
            continue;
        };
        if !report.solved() {
            continue;
        }
        for task in [Task::PortPathElection, Task::PortElection, Task::Selection] {
            let weak = weaken_outputs(&report.outputs, task).expect("weakening defined");
            verify(task, &g, &weak)
                .unwrap_or_else(|e| panic!("case {case}, {task}: weakened outputs invalid: {e}"));
        }
    }
}

/// Theorem 2.2 end to end on random graphs: whenever ψ_S is finite, the oracle and
/// algorithm solve Selection in exactly ψ_S rounds (through the engine).
#[test]
fn selection_with_advice_on_random_graphs() {
    for case in 0..CASES {
        let g = build(case);
        if let Some(psi) = psi_s(&g) {
            let report = Election::task(Task::Selection)
                .solver(AdviceSolver::theorem_2_2())
                .run(&g)
                .unwrap();
            assert_eq!(report.rounds, psi, "case {case}");
            assert!(report.solved(), "case {case}");
            assert!(report.advice_bits.is_some(), "case {case}");
        }
    }
}

/// Swapping two ports at a node and swapping them back restores the original graph.
#[test]
fn port_swaps_are_involutions() {
    for case in 0..CASES {
        let g = build(case);
        let mut rng = Rng::seed(0x5AA5 ^ case);
        let v = rng.below(g.num_nodes()) as u32;
        let deg = g.degree(v) as u32;
        if deg >= 2 {
            let (a, b) = (
                rng.below(deg as usize) as u32,
                rng.below(deg as usize) as u32,
            );
            let once = permute::swap_ports(&g, v, a, b).unwrap();
            let twice = permute::swap_ports(&once, v, a, b).unwrap();
            assert_eq!(twice, g, "case {case}");
        }
    }
}
