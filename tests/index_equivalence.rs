//! Old-vs-new election-index equivalence: the class-quotient search
//! (`pe_assignment` / `ppe_assignment` / `cppe_assignment` and the ψ drivers)
//! against the retained pre-quotient `*_enumerated` oracles.
//!
//! The contract under test: wherever the bounded enumeration *resolves* (returns
//! `Ok`), the quotient search resolves to the same answer — same ψ values, same
//! existence verdict per (depth, leader). Where the enumeration exhausts its
//! budget, the quotient search may still answer (that is the whole point of the
//! refactor), so a budget error on the old side never constrains the new side.
//! Concrete PPE/CPPE port sequences are *not* compared — the tasks admit many
//! valid assignments and the two searches pick different ones; instead the new
//! side's sequences are re-validated against the task predicates. PE is the
//! exception: its port-by-port tie-break is deliberately identical, so the
//! assignments must match exactly.

use four_shades::constructions::{GClass, JClass};
use four_shades::graph::rng::Rng;
use four_shades::graph::{generators, PortGraph};
use four_shades::prelude::*;
use four_shades::views::election_index::{
    cppe_assignment, cppe_assignment_enumerated, pe_assignment, pe_assignment_enumerated,
    ppe_assignment, ppe_assignment_enumerated, psi_cppe, psi_cppe_enumerated, psi_ppe,
    psi_ppe_enumerated, IndexError,
};
use four_shades::views::paths::{cppe_sequence_is_valid, ppe_sequence_is_valid};
use four_shades::views::Refinement;
use four_shades::workloads::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};

/// The shared path budget (the map solver's default).
const BUDGET: usize = 50_000;

/// Small graphs on which the enumeration oracle terminates comfortably: the
/// paper's constructions, the classic generator shapes (symmetric and
/// symmetry-broken), and seed-shuffled instances of every workload family.
fn corpus() -> Vec<(String, PortGraph)> {
    let mut out: Vec<(String, PortGraph)> = vec![
        (
            "three-node line".into(),
            generators::paper_three_node_line(),
        ),
        ("path-6".into(), generators::path(6).unwrap()),
        ("ring-6".into(), generators::symmetric_ring(6).unwrap()),
        (
            "oriented-ring".into(),
            generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
        ),
        (
            "alternating-cycle-6".into(),
            generators::alternating_cycle(6).unwrap(),
        ),
        ("star-4".into(), generators::star(4).unwrap()),
        ("K5".into(), generators::complete(5).unwrap()),
        ("hypercube-3".into(), generators::hypercube(3).unwrap()),
        (
            "full-tree-2-3".into(),
            generators::full_tree(2, 3).unwrap().0,
        ),
    ];
    let g_member = GClass::new(4, 1).unwrap().member(2).unwrap();
    out.push(("G_{4,1} member 2".into(), g_member.labeled.graph));
    let j_member = JClass::new(2, 4).unwrap().template(Some(2)).unwrap();
    out.push(("J_{2,4} chain 2".into(), j_member.labeled.graph));
    let families: Vec<Box<dyn GraphFamily>> = vec![
        Box::new(RandomRegularFamily::new(3, vec![10, 14], 0xA5EED)),
        Box::new(TorusFamily::new(vec![(3, 4)]).shuffled(41)),
        Box::new(HypercubeFamily::new(vec![3]).shuffled(41)),
        Box::new(CirculantFamily::powers_of_two(vec![15], 3).shuffled(41)),
    ];
    for f in &families {
        for inst in f.instances(2) {
            out.push((inst.name.clone(), inst.graph));
        }
    }
    out
}

/// `Ok` on the old side forces the same `Ok` on the new side; an old-side budget
/// error leaves the new side free (it may resolve, or report its own budget).
fn assert_superset<T: PartialEq + std::fmt::Debug>(
    name: &str,
    what: &str,
    old: &Result<T, IndexError>,
    new: &Result<T, IndexError>,
) {
    match (old, new) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{name}: {what} disagree"),
        (Ok(a), Err(e)) => {
            panic!("{name}: {what}: enumeration resolved {a:?} but quotient search errored: {e}")
        }
        (Err(_), _) => {} // old budget exhausted: the oracle has no opinion
    }
}

#[test]
fn pe_assignments_match_the_oracle_exactly() {
    for (name, g) in corpus() {
        let r = Refinement::compute(&g, None);
        for h in 0..=r.stable_depth() {
            for leader in r.unique_nodes_at(h) {
                assert_eq!(
                    pe_assignment(&g, &r, h, leader),
                    pe_assignment_enumerated(&g, &r, h, leader),
                    "{name}: PE assignment at depth {h}, leader {leader}"
                );
            }
        }
    }
}

#[test]
fn strong_psi_values_match_the_oracle() {
    for (name, g) in corpus() {
        assert_superset(
            &name,
            "ψ_PPE",
            &psi_ppe_enumerated(&g, BUDGET),
            &psi_ppe(&g, BUDGET),
        );
        assert_superset(
            &name,
            "ψ_CPPE",
            &psi_cppe_enumerated(&g, BUDGET),
            &psi_cppe(&g, BUDGET),
        );
    }
}

#[test]
fn strong_assignment_existence_matches_the_oracle_depthwise() {
    for (name, g) in corpus() {
        let r = Refinement::compute(&g, None);
        for h in 0..=r.stable_depth() {
            // A few leaders per depth keep the oracle side affordable.
            for leader in r.unique_nodes_at(h).into_iter().take(3) {
                let old = ppe_assignment_enumerated(&g, &r, h, leader, BUDGET);
                let new = ppe_assignment(&g, &r, h, leader, BUDGET);
                assert_superset(
                    &name,
                    &format!("PPE existence at depth {h}, leader {leader}"),
                    &old.map(|a| a.is_some()),
                    &new.as_ref().map(|a| a.is_some()).map_err(|e| e.clone()),
                );
                // The sequences themselves may differ — but the new side's must
                // satisfy the task predicate for every node.
                if let Ok(Some(assignment)) = &new {
                    for v in g.nodes().filter(|&v| v != leader) {
                        let ports = assignment[v as usize].as_ref().unwrap();
                        assert!(
                            ppe_sequence_is_valid(&g, v, ports, leader),
                            "{name}: invalid PPE sequence at node {v}"
                        );
                    }
                }
                let old = cppe_assignment_enumerated(&g, &r, h, leader, BUDGET);
                let new = cppe_assignment(&g, &r, h, leader, BUDGET);
                assert_superset(
                    &name,
                    &format!("CPPE existence at depth {h}, leader {leader}"),
                    &old.map(|a| a.is_some()),
                    &new.as_ref().map(|a| a.is_some()).map_err(|e| e.clone()),
                );
                if let Ok(Some(assignment)) = &new {
                    for v in g.nodes().filter(|&v| v != leader) {
                        let pairs = assignment[v as usize].as_ref().unwrap();
                        assert!(
                            cppe_sequence_is_valid(&g, v, pairs, leader),
                            "{name}: invalid CPPE sequence at node {v}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn random_regular_psi_equivalence_property() {
    // Seeded SplitMix64 property loop: every case reproducible from its index.
    for case in 0..12u64 {
        let mut rng = Rng::seed(0x1DEA ^ case);
        let n = 2 * rng.gen_range(4..9); // 3-regular needs even n; 8 ≤ n ≤ 16
        let seed = rng.next_u64();
        let fam = RandomRegularFamily::new(3, vec![n], seed);
        let g = fam.instances(1).remove(0).graph;
        assert_superset(
            &format!("rr case {case} (n={n})"),
            "ψ_PPE",
            &psi_ppe_enumerated(&g, BUDGET),
            &psi_ppe(&g, BUDGET),
        );
        assert_superset(
            &format!("rr case {case} (n={n})"),
            "ψ_CPPE",
            &psi_cppe_enumerated(&g, BUDGET),
            &psi_cppe(&g, BUDGET),
        );
    }
}
