//! End-to-end tests of the shared-DAG view codec across the workload families and
//! through the engine: on every family the DAG codec agrees with the tree codec
//! (identical decoded views, identical election outputs), and on symmetric
//! topologies the DAG advice realises the `Θ(Δ^h)` → `O(distinct subtrees)` size
//! collapse the codec exists for.

use four_shades::constructions::GraphFamily;
use four_shades::prelude::*;
use four_shades::views::dag_encoding::{decode_view_dag, encode_view_dag};
use four_shades::views::encoding::{decode_view_interned, encode_view_interned};
use four_shades::views::ViewInterner;
use four_shades::workloads::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};

fn workload_families() -> Vec<Box<dyn GraphFamily>> {
    vec![
        Box::new(RandomRegularFamily::new(3, vec![16, 24], 0xA5EED)),
        Box::new(TorusFamily::new(vec![(3, 4), (4, 4)]).shuffled(41)),
        Box::new(HypercubeFamily::new(vec![3, 4]).shuffled(41)),
        Box::new(CirculantFamily::powers_of_two(vec![15, 24], 3).shuffled(41)),
    ]
}

#[test]
fn dag_codec_round_trips_and_agrees_with_the_tree_codec_on_all_workload_families() {
    for family in workload_families() {
        for instance in family.instances(2) {
            let g = &instance.graph;
            let mut interner = ViewInterner::new();
            for depth in 0..=3usize {
                for view in interner.build_all(g, depth) {
                    let dag = encode_view_dag(&view, depth);
                    let (from_dag, dh) = decode_view_dag(&dag).unwrap();
                    let (from_tree, th) =
                        decode_view_interned(&encode_view_interned(&view, depth)).unwrap();
                    assert_eq!((dh, th), (depth, depth), "{}", instance.name);
                    assert_eq!(from_dag, view, "{}", instance.name);
                    assert_eq!(from_dag, from_tree, "{}", instance.name);
                }
            }
        }
    }
}

#[test]
fn dag_advice_solver_matches_the_tree_solver_on_every_workload_family() {
    for family in workload_families() {
        for instance in family.instances(1) {
            let g = &instance.graph;
            let tree = Election::task(Task::Selection)
                .solver(AdviceSolver::theorem_2_2())
                .run(g)
                .unwrap();
            let dag = Election::task(Task::Selection)
                .solver(AdviceSolver::theorem_2_2_dag())
                .run(g)
                .unwrap();
            assert!(tree.solved() && dag.solved(), "{}", instance.name);
            assert_eq!(tree.outputs, dag.outputs, "{}", instance.name);
            assert_eq!(tree.rounds, dag.rounds, "{}", instance.name);
            assert_eq!(tree.leader(), dag.leader(), "{}", instance.name);
            // Both report both sizes; each ships its own codec's size.
            assert_eq!(tree.advice_bits, tree.advice_tree_bits, "{}", instance.name);
            assert_eq!(dag.advice_bits, dag.advice_dag_bits, "{}", instance.name);
            assert_eq!(
                tree.advice_dag_bits, dag.advice_dag_bits,
                "{}",
                instance.name
            );
        }
    }
}

#[test]
fn the_collapse_is_exponential_on_a_symmetric_family() {
    // Canonical (unshuffled) tori are fully symmetric: every node shares one view
    // node per depth, so dag-bits grow O(h) while tree-bits multiply by Δ − 1 ≈ 3
    // per depth. Measured on the 6×6 torus over depths 1..=8.
    let torus = TorusFamily::generate(6, 6);
    let mut interner = ViewInterner::new();
    let mut tree_sizes = Vec::new();
    let mut dag_sizes = Vec::new();
    for h in 1..=8usize {
        let view = interner.build_all(&torus, h).swap_remove(0);
        tree_sizes.push(encode_view_interned(&view, h).len());
        dag_sizes.push(encode_view_dag(&view, h).len());
    }
    // Tree: × ≥ 3 per depth once branching kicks in; DAG: bounded additive step.
    for w in tree_sizes.windows(2).skip(1) {
        assert!(w[1] >= 3 * w[0], "tree bits grew {} -> {}", w[0], w[1]);
    }
    for w in dag_sizes.windows(2) {
        assert!(
            w[1] >= w[0] && w[1] - w[0] <= 128,
            "dag bits grew {} -> {}",
            w[0],
            w[1]
        );
    }
    // At depth 8 the gap is ~three orders of magnitude (cf. BENCH_bench_views.json).
    assert!(
        tree_sizes[7] > 500 * dag_sizes[7],
        "tree {} vs dag {}",
        tree_sizes[7],
        dag_sizes[7]
    );
}
