//! Backend equivalence on edge-case graphs: every backend of the *extended*
//! `Backend::smoke_set()` — including the arena-based `Batching` and the
//! chunk-size-adaptive `AdaptiveParallel` — must produce bit-identical outputs and
//! `RunReport`s on the degenerate shapes where scheduling bugs hide: a single node
//! (no edges at all), a single edge, fewer nodes than worker threads, and
//! irregular-degree families where degree-balanced chunking actually cuts unevenly.

use four_shades::graph::{generators, GraphBuilder, PortGraph};
use four_shades::sim::{Backend, NodeAlgorithm, ViewCollectorFactory};

/// Flood-max over degrees; relies on the *default* `send_into` (the trait-provided
/// copy from `send`), so this exercises the arena backends' fallback path.
#[derive(Clone)]
struct Flood {
    degree: usize,
    best: usize,
}

impl NodeAlgorithm for Flood {
    type Message = usize;
    type Output = usize;

    fn send(&mut self, _round: usize) -> Vec<Option<usize>> {
        vec![Some(self.best); self.degree]
    }

    fn receive(&mut self, _round: usize, inbox: &mut [Option<usize>]) {
        for m in inbox.iter_mut().filter_map(Option::take) {
            self.best = self.best.max(m);
        }
    }

    fn output(&self) -> usize {
        self.best
    }
}

fn flood_factory(degree: usize) -> Flood {
    Flood {
        degree,
        best: degree,
    }
}

/// A sender that only talks on even ports in even rounds (and odd ports in odd
/// rounds), returning a deliberately *short* outbox vector: exercises the
/// "missing trailing ports mean silence" contract on every backend, which the arena
/// backends must reproduce by clearing the remaining slots.
struct Sparse {
    degree: usize,
    log: Vec<(usize, usize, u64)>,
}

impl NodeAlgorithm for Sparse {
    type Message = u64;
    type Output = Vec<(usize, usize, u64)>;

    fn send(&mut self, round: usize) -> Vec<Option<u64>> {
        (0..self.degree.saturating_sub(round % 2))
            .map(|p| {
                if p % 2 == round % 2 {
                    Some((round * 1000 + p) as u64)
                } else {
                    None
                }
            })
            .collect()
    }

    fn receive(&mut self, round: usize, inbox: &mut [Option<u64>]) {
        for (p, m) in inbox.iter_mut().enumerate() {
            if let Some(m) = m.take() {
                self.log.push((round, p, m));
            }
        }
    }

    fn output(&self) -> Vec<(usize, usize, u64)> {
        self.log.clone()
    }
}

/// The edge graphs: n = 1 (no edges), n = 2 (one edge), a 3-path (fewer nodes than
/// the 7-thread smoke backend), a star and a "broom" (irregular degrees), and random
/// irregular graphs over several seeds.
fn edge_graphs() -> Vec<(String, PortGraph)> {
    let mut graphs = Vec::new();
    graphs.push((
        "single-node".to_string(),
        GraphBuilder::with_nodes(1).build().unwrap(),
    ));
    {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(0, 0, 1, 0).unwrap();
        graphs.push(("single-edge".to_string(), b.build().unwrap()));
    }
    graphs.push((
        "three-path".to_string(),
        generators::paper_three_node_line(),
    ));
    graphs.push(("star-6".to_string(), generators::star(6).unwrap()));
    {
        // Broom: path 0-1-2-3-4 plus two extra leaves on node 0 — one high-degree
        // node up front, exactly the shape degree-balanced chunking cuts after.
        let mut b = GraphBuilder::with_nodes(7);
        for i in 0..4u32 {
            let pu = if i == 0 { 0 } else { 1 };
            b.add_edge(i, pu, i + 1, 0).unwrap();
        }
        b.add_edge(0, 1, 5, 0).unwrap();
        b.add_edge(0, 2, 6, 0).unwrap();
        graphs.push(("broom".to_string(), b.build().unwrap()));
    }
    for seed in 0..4u64 {
        graphs.push((
            format!("random-irregular-{seed}"),
            generators::random_connected(23 + seed as usize, 6, 11, seed).unwrap(),
        ));
    }
    graphs
}

#[test]
fn all_backends_agree_on_edge_graphs_with_default_send() {
    for (name, g) in edge_graphs() {
        for rounds in [0usize, 1, 3] {
            let seq = Backend::Sequential.run(&g, &flood_factory, rounds);
            for backend in Backend::smoke_set() {
                let out = backend.run(&g, &flood_factory, rounds);
                assert_eq!(out.outputs, seq.outputs, "{name}, {backend}, r={rounds}");
                assert_eq!(out.report, seq.report, "{name}, {backend}, r={rounds}");
            }
        }
    }
}

#[test]
fn all_backends_agree_on_sparse_short_outboxes() {
    let factory = |degree: usize| Sparse {
        degree,
        log: Vec::new(),
    };
    for (name, g) in edge_graphs() {
        let seq = Backend::Sequential.run(&g, &factory, 4);
        for backend in Backend::smoke_set() {
            let out = backend.run(&g, &factory, 4);
            assert_eq!(out.outputs, seq.outputs, "{name}, {backend}");
            assert_eq!(out.report, seq.report, "{name}, {backend}");
        }
    }
}

#[test]
fn all_backends_agree_on_view_collection_with_overridden_send_into() {
    // `ViewCollector` overrides `send_into`, so this exercises the arena backends'
    // allocation-free fast path; views after r rounds must equal `B^r(v)` everywhere.
    for (name, g) in edge_graphs() {
        let seq = Backend::Sequential.run(&g, &ViewCollectorFactory, 2);
        for backend in Backend::smoke_set() {
            let out = backend.run(&g, &ViewCollectorFactory, 2);
            assert_eq!(out.outputs, seq.outputs, "{name}, {backend}");
            assert_eq!(out.report, seq.report, "{name}, {backend}");
        }
    }
}

#[test]
fn reports_count_messages_identically_on_an_irregular_family() {
    // On the star K_{1,6}, flooding delivers 2·m = 12 messages per round on every
    // backend; the explicit count pins the accounting (not just cross-equality).
    let g = generators::star(6).unwrap();
    for backend in Backend::smoke_set() {
        let out = backend.run(&g, &flood_factory, 3);
        assert_eq!(out.report.messages_delivered, 36, "{backend}");
        assert_eq!(out.report.rounds, 3, "{backend}");
    }
}
