//! Experiment E4 as a test: the structural ingredients of Theorem 3.11 on instantiated
//! members of `U_{4,1}`, including the indistinguishability-plus-different-answer
//! mechanism that forces exponential advice for Port Election in minimum time.

use four_shades::constructions::UClass;
use four_shades::election::port_election::solve_port_election_on_u;
use four_shades::election::selection::solve_selection_min_time;
use four_shades::election::tasks::{verify, NodeOutput, Task};
use four_shades::views::paths::pe_port_is_valid;
use four_shades::views::{JointRefinement, Refinement};

fn class() -> UClass {
    UClass::new(4, 1).unwrap()
}

#[test]
fn psi_s_equals_psi_pe_equals_k_on_sampled_members() {
    let class = class();
    for idx in [1u64, 1000, 9841, 19683] {
        let member = class.member_by_index(idx).unwrap();
        let g = &member.labeled.graph;
        let r = Refinement::compute(g, Some(class.k));
        // ψ_S ≥ k: nothing unique below depth k.
        for h in 0..class.k {
            assert!(r.unique_nodes_at(h).is_empty(), "idx {idx}, depth {h}");
        }
        // ψ_PE ≤ k: the Lemma 3.9 algorithm succeeds in k rounds.
        let run = solve_port_election_on_u(g, class.k).unwrap();
        verify(Task::PortElection, g, &run.outputs).expect("PE solved");
    }
}

#[test]
fn heavy_twins_swap_consistently_and_need_member_specific_answers() {
    // Two members that differ only in s_5. The heavy root r_{5,1,1} has the same B^k in
    // both (so the same advice forces the same output there), yet the sets of ports
    // that are *correct* for it differ between the two members — the engine of
    // Theorem 3.11.
    let class = class();
    let mut sa = vec![1u32; 9];
    let mut sb = vec![1u32; 9];
    sa[4] = 1;
    sb[4] = 3;
    let ga = class.member(&sa).unwrap();
    let gb = class.member(&sb).unwrap();

    let joint = JointRefinement::compute(&[&ga.labeled.graph, &gb.labeled.graph], Some(class.k));
    let ha = ga.heavy_root(5, 1);
    let hb = gb.heavy_root(5, 1);
    assert!(
        joint.same_view((0, ha), (1, hb), class.k),
        "identical views at depth k"
    );

    // Run the map-based algorithm on both members and look at the outputs at that node.
    let run_a = solve_port_election_on_u(&ga.labeled.graph, class.k).unwrap();
    let run_b = solve_port_election_on_u(&gb.labeled.graph, class.k).unwrap();
    let leader_a = verify(Task::PortElection, &ga.labeled.graph, &run_a.outputs)
        .unwrap()
        .leader;
    let leader_b = verify(Task::PortElection, &gb.labeled.graph, &run_b.outputs)
        .unwrap()
        .leader;

    let NodeOutput::FirstPort(pa) = run_a.outputs[ha as usize] else {
        panic!("heavy root outputs a port");
    };
    let NodeOutput::FirstPort(pb) = run_b.outputs[hb as usize] else {
        panic!("heavy root outputs a port");
    };
    // The correct answers differ across the two members: the port that is valid in G_a
    // is not valid in G_b (and vice versa), because the swap moved the path to the
    // cycle onto a different port.
    assert!(pe_port_is_valid(&ga.labeled.graph, ha, pa, leader_a));
    assert!(pe_port_is_valid(&gb.labeled.graph, hb, pb, leader_b));
    assert!(
        !pe_port_is_valid(&gb.labeled.graph, hb, pa, leader_b),
        "the member-a answer must fail in member b — identical advice cannot serve both"
    );
}

#[test]
fn selection_advice_on_u_members_is_small_while_pe_lower_bound_is_large() {
    let class = class();
    let member = class.member(&[2u32; 9]).unwrap();
    let g = &member.labeled.graph;
    let s_run = solve_selection_min_time(g);
    verify(Task::Selection, g, &s_run.outputs).expect("S solved");
    let pe_lower = four_shades::election::bounds::theorem_3_11_lower_bits(class.delta, class.k);
    // Already at Δ=4, k=1 the PE lower bound exceeds a quarter of the measured S advice
    // budget per unit of log Δ; the point recorded in EXPERIMENTS.md is the growth rate,
    // but we assert the concrete numbers are consistent: the S advice is a few hundred
    // bits, the PE bound is ≥ 4.5 bits here and squares with every increment of k.
    assert!(s_run.advice_bits() > 0);
    assert!(pe_lower > 0.0);
    let pe_lower_next_k = four_shades::election::bounds::theorem_3_11_lower_bits(class.delta, 2);
    assert!(
        pe_lower_next_k / pe_lower > 50.0,
        "the PE bound explodes with k ((Δ−1)^z with z = (Δ−2)(Δ−1)^{{k−1}}): \
         {pe_lower} bits at k=1 vs {pe_lower_next_k} bits at k=2"
    );
}

#[test]
fn port_election_leader_is_a_cycle_root_lemma_3_10() {
    let class = class();
    for idx in [2u64, 500, 7777] {
        let member = class.member_by_index(idx).unwrap();
        let g = &member.labeled.graph;
        let run = solve_port_election_on_u(g, class.k).unwrap();
        let leader = verify(Task::PortElection, g, &run.outputs).unwrap().leader;
        assert!(member.cycle_roots().contains(&leader), "idx {idx}");
    }
}
