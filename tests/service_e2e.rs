//! End-to-end acceptance of the multi-tenant election service: a 1000-request
//! multi-tenant mix across four graph families, scheduled over the work-stealing
//! pool against one shared interner, with verified verdicts and measurable
//! cross-tenant sharing.

use four_shades::prelude::*;
use four_shades::workloads::service_mix;
use std::collections::BTreeSet;

fn to_request(mix: service_mix::MixRequest) -> ElectionRequest {
    let spec = mix.solver;
    ElectionRequest::new(
        mix.tenant,
        mix.name,
        mix.graph,
        mix.task,
        SolverRecipe::new(spec.label(), Box::new(move || spec.build())),
        mix.backend,
    )
}

#[test]
fn a_thousand_concurrent_requests_across_tenants() {
    let mix = service_mix::mix(1000);
    assert_eq!(mix.len(), 1000);
    let tenants: BTreeSet<&str> = mix.iter().map(|r| r.tenant.as_str()).collect();
    assert!(tenants.len() >= 3, "at least three families: {tenants:?}");

    let requests: Vec<ElectionRequest> = mix.iter().cloned().map(to_request).collect();
    let (completed, report) = ElectionService::run_batch(ServiceConfig::with_workers(4), requests);

    // Every admitted request completed, in submission order.
    assert_eq!(completed.len(), 1000);
    assert_eq!(report.submitted, 1000);
    assert_eq!(report.rejected, 0);
    for (index, election) in completed.iter().enumerate() {
        assert_eq!(election.id, index as u64, "sorted by submission id");
    }

    // Verdicts are correct in aggregate: the large majority of the mix solves
    // (the families are seed-shuffled to be feasible), nothing panicked, and the
    // accounting adds up — verdict-rejected elections (a strong shade on a graph
    // that only supports a weaker one) are counted as unsolved, not failed.
    assert_eq!(report.failed, 0, "no solver errors or panics in the mix");
    assert_eq!(
        report.solved + report.unsolved(),
        report.submitted,
        "accounting"
    );
    assert!(
        report.solved >= 800,
        "most of the mix must solve: {} of {}",
        report.solved,
        report.submitted
    );

    // Every solved election carries a verified leader on its own graph.
    for election in completed.iter().filter(|c| c.solved()) {
        let result = election.outcome.as_ref().unwrap();
        assert!(result.solved(), "{}", election.name);
        assert!(result.leader().is_some(), "{}", election.name);
    }

    // Cross-tenant sharing through the one shared interner is measurable: the mix
    // repeats instances across cycles and tenants, so the hit rate is high, and
    // the latency pipeline produced full order statistics.
    assert!(report.interner.hit_rate() > 0.0, "{:?}", report.interner);
    assert_eq!(report.turnaround_latency.count, 1000);
    assert!(report.turnaround_latency.p50 <= report.turnaround_latency.p99);
    assert!(report.elections_per_sec > 0.0);
    assert_eq!(report.executed_per_worker.iter().sum::<u64>(), 1000);
    assert_eq!(report.workers, 4);

    // The per-tenant breakdown partitions the batch exactly: every tenant of the
    // mix appears once (sorted), and executed/solved/failed sum to the report
    // totals.
    let breakdown_tenants: Vec<&str> = report.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(
        breakdown_tenants,
        tenants.iter().copied().collect::<Vec<_>>()
    );
    assert_eq!(
        report.tenants.iter().map(|t| t.executed).sum::<u64>(),
        report.submitted
    );
    assert_eq!(
        report.tenants.iter().map(|t| t.solved).sum::<u64>(),
        report.solved
    );
    assert_eq!(
        report.tenants.iter().map(|t| t.failed).sum::<u64>(),
        report.failed
    );
    for tenant in &report.tenants {
        assert_eq!(
            tenant.turnaround_latency.count as u64, tenant.executed,
            "{}: every executed request is a latency sample",
            tenant.tenant
        );
        assert!(tenant.turnaround_latency.p50 <= tenant.turnaround_latency.max);
    }
}

#[test]
fn trace_sink_captures_per_request_rounds_and_scheduler_events() {
    use four_shades::trace::{Recorder, RoundProfile, TraceEvent};
    use std::sync::Arc;

    let recorder = Arc::new(Recorder::new());
    let requests: Vec<ElectionRequest> = service_mix::mix(60).into_iter().map(to_request).collect();
    let total = requests.len() as u64;
    let config = ServiceConfig {
        trace_sink: Some(recorder.clone()),
        ..ServiceConfig::with_workers(4)
    };
    let (completed, report) = ElectionService::run_batch(config, requests);
    let events = recorder.drain();

    // Scheduler events: exactly one WorkerExecute per request, and as many
    // WorkerSteal events as the report counts steals.
    let executes: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::WorkerExecute { .. }))
        .collect();
    assert_eq!(executes.len() as u64, total);
    let mut executed_ids: Vec<u64> = executes.iter().map(|e| e.trace_id()).collect();
    executed_ids.sort_unstable();
    assert_eq!(executed_ids, (0..total).collect::<Vec<u64>>());
    let steals = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::WorkerSteal { .. }))
        .count() as u64;
    assert_eq!(steals, report.steals);

    // Per-request engine events: every completed run's per-round message sums,
    // filtered by its request id alone, reproduce the report's totals — the
    // Tagged stamping separates concurrent tenants' streams exactly.
    for election in &completed {
        let result = election.outcome.as_ref().expect("mix has no failures");
        let profile = RoundProfile::for_trace(&events, election.id);
        assert_eq!(
            profile.total_messages() as usize,
            result.messages_delivered,
            "request {} ({})",
            election.id,
            election.name
        );
        // The engine also attached the same profile to the report itself.
        assert_eq!(
            result.round_profile.as_ref(),
            Some(&profile),
            "request {}",
            election.id
        );
    }
}

#[test]
fn worker_count_does_not_change_the_thousand_outcomes() {
    // The same mix on 1 and on 4 workers: identical ids, names and verdicts.
    let run = |workers: usize| {
        let requests: Vec<ElectionRequest> =
            service_mix::mix(250).into_iter().map(to_request).collect();
        ElectionService::run_batch(ServiceConfig::with_workers(workers), requests).0
    };
    let single = run(1);
    let pooled = run(4);
    assert_eq!(single.len(), pooled.len());
    for (a, b) in single.iter().zip(pooled.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.name, b.name);
        assert_eq!(a.tenant, b.tenant);
        assert_eq!(a.solved(), b.solved());
        if let (Ok(ra), Ok(rb)) = (&a.outcome, &b.outcome) {
            assert_eq!(ra.outputs, rb.outputs, "{}", a.name);
            assert_eq!(ra.leader(), rb.leader());
        }
    }
}
