//! Cross-crate integration tests: the four tasks solved end to end (oracle → advice →
//! LOCAL simulation → outputs → verifier) on named graphs, members of the constructed
//! families, and the map-based baselines — all driven through the `ElectionEngine`
//! facade.

use four_shades::constructions::{GClass, JClass, UClass};
use four_shades::election::map_algorithms::measured_indices;
use four_shades::election::tasks::{verify, weaken_outputs};
use four_shades::graph::generators;
use four_shades::prelude::*;
use four_shades::views::election_index;

#[test]
fn selection_with_advice_runs_in_minimum_time_on_the_suite() {
    let graphs = vec![
        generators::paper_three_node_line(),
        generators::star(5).unwrap(),
        generators::oriented_ring(&[true, true, false, true, false, false, true]).unwrap(),
        generators::random_connected(30, 5, 12, 4).unwrap(),
        GClass::new(4, 1).unwrap().member(4).unwrap().labeled.graph,
        UClass::new(4, 1)
            .unwrap()
            .member(&[1; 9])
            .unwrap()
            .labeled
            .graph,
    ];
    for g in graphs {
        let Some(psi) = election_index::psi_s(&g) else {
            continue;
        };
        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(&g)
            .unwrap();
        assert_eq!(report.rounds, psi);
        assert!(report.solved(), "selection must be solved");
    }
}

#[test]
fn map_baseline_agrees_with_combinatorial_indices_and_fact_1_1() {
    let graphs = vec![
        ("line", generators::paper_three_node_line()),
        ("star", generators::star(4).unwrap()),
        (
            "ring",
            generators::oriented_ring(&[true, false, true, true, false]).unwrap(),
        ),
        (
            "random",
            generators::random_connected(12, 4, 4, 99).unwrap(),
        ),
    ];
    for (name, g) in graphs {
        let measured = measured_indices(&g, 50_000).expect("budget");
        let computed = election_index::compute_all(&g, 50_000).expect("budget");
        assert_eq!(
            measured,
            [computed.s, computed.pe, computed.ppe, computed.cppe],
            "{name}"
        );
        assert!(computed.satisfies_hierarchy(), "{name}");
        // The engine's map solver measures the same indices.
        for (task, expected) in [
            (Task::Selection, computed.s),
            (Task::PortElection, computed.pe),
            (Task::PortPathElection, computed.ppe),
            (Task::CompletePortPathElection, computed.cppe),
        ] {
            let via_engine = Election::task(task)
                .solver(MapSolver::default())
                .run(&g)
                .ok()
                .filter(|r| r.solved())
                .map(|r| r.rounds);
            assert_eq!(via_engine, expected, "{name} / {task}");
        }
    }
}

#[test]
fn every_task_weakens_downwards_on_a_solved_instance() {
    let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
    let run = Election::task(Task::CompletePortPathElection)
        .solver(MapSolver::default())
        .run(&g)
        .expect("solvable");
    assert!(run.solved(), "CPPE ok");
    for task in [Task::PortPathElection, Task::PortElection, Task::Selection] {
        let weak = weaken_outputs(&run.outputs, task).expect("weakening defined");
        verify(task, &g, &weak).expect("weakened outputs stay correct (Fact 1.1)");
    }
}

#[test]
fn lemma_3_9_port_election_is_time_optimal_on_u_members() {
    let class = UClass::new(4, 1).unwrap();
    for fill in 1..=3u32 {
        let member = class.member(&[fill; 9]).unwrap();
        let g = &member.labeled.graph;
        // Lower bound: ψ_PE ≥ ψ_S ≥ k because no view is unique below depth k.
        let r = four_shades::views::Refinement::compute(g, Some(class.k));
        assert!((0..class.k).all(|h| r.unique_nodes_at(h).is_empty()));
        // Upper bound: the Lemma 3.9 algorithm solves PE in exactly k rounds.
        let report = Election::task(Task::PortElection)
            .solver(PortElectionSolver::new(class.k))
            .run(g)
            .expect("run");
        assert_eq!(report.rounds, class.k);
        assert!(report.solved(), "PE solved");
        assert!(
            member.cycle_roots().contains(&report.leader().unwrap()),
            "Lemma 3.10"
        );
    }
}

#[test]
fn lemma_4_8_cppe_solves_chains_of_every_tested_length() {
    let class = JClass::new(2, 4).unwrap();
    for gadgets in [2usize, 3, 8, 16] {
        let member = class.template(Some(gadgets)).unwrap();
        let g = member.labeled.graph.clone();
        let rho0 = member.rho(0);
        let run = Election::task(Task::CompletePortPathElection)
            .solver(CppeSolver::new(member, class.k))
            .run(&g)
            .expect("run");
        assert_eq!(run.rounds, class.k);
        assert!(run.solved(), "CPPE solved");
        assert_eq!(run.leader(), Some(rho0), "the leader is ρ_0");
        // Fact 1.1 in action: the same outputs, weakened, solve PPE, PE and S.
        for task in [Task::PortPathElection, Task::PortElection, Task::Selection] {
            let weak = weaken_outputs(&run.outputs, task).unwrap();
            verify(task, &g, &weak).unwrap_or_else(|e| panic!("{task} on {gadgets} gadgets: {e}"));
        }
    }
}

#[test]
fn selection_advice_size_tracks_the_theorem_2_2_form() {
    // Measured advice bits stay within a constant factor of (Δ−1)^ψ·log₂Δ across the
    // graphs the oracle handles here (the paper's bound is asymptotic; the factor
    // observed on this suite is recorded in EXPERIMENTS.md).
    use four_shades::election::bounds::theorem_2_2_upper_form;
    for seed in 0..10u64 {
        let g = generators::random_connected(24, 4, 8, seed).unwrap();
        let Some(psi) = election_index::psi_s(&g) else {
            continue;
        };
        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(&g)
            .unwrap();
        let bits = report.advice_bits.expect("advice solver");
        let form = theorem_2_2_upper_form(g.max_degree(), psi);
        assert!(
            (bits as f64) <= 16.0 * form.max(8.0),
            "seed {seed}: {bits} bits vs form {form}"
        );
    }
}
