//! End-to-end tests of the `ElectionEngine` facade: all four shades, every solver
//! kind, and every execution backend, on one graph from each of the paper's
//! construction families (`G_{Δ,k}`, `U_{Δ,k}`, `J_{μ,k}`).

use four_shades::constructions::{GClass, JClass, UClass};
use four_shades::prelude::*;

/// All four shades solved through the engine on a `G_{4,1}` member, with the
/// map-based minimum-time solver, on every backend.
#[test]
fn all_four_shades_on_a_g_member_via_the_engine() {
    let member = GClass::new(4, 1).unwrap().member(4).unwrap();
    let g = &member.labeled.graph;
    for task in Task::ALL {
        let seq = Election::task(task)
            .solver(MapSolver::default())
            .run(g)
            .expect("G members are feasible");
        assert!(seq.solved(), "{task}: {}", seq.summary());
        for backend in Backend::smoke_set() {
            let report = Election::task(task)
                .solver(MapSolver::default())
                .backend(backend)
                .run(g)
                .unwrap();
            assert_eq!(report.outputs, seq.outputs, "{task} on {backend}");
            assert_eq!(report.rounds, seq.rounds, "{task} on {backend}");
            assert_eq!(
                report.messages_delivered, seq.messages_delivered,
                "{task} on {backend}"
            );
        }
    }
}

/// Selection and Port Election through the engine on a `U_{4,1}` member: the Lemma
/// 3.9 solver serves PE natively and S via the engine's Fact 1.1 weakening, in
/// exactly `k` rounds either way.
#[test]
fn pe_and_s_on_a_u_member_via_the_engine() {
    let class = UClass::new(4, 1).unwrap();
    let member = class.member(&[2u32; 9]).unwrap();
    let g = &member.labeled.graph;
    for task in [Task::PortElection, Task::Selection] {
        let report = Election::task(task)
            .solver(PortElectionSolver::new(class.k))
            .run(g)
            .expect("U members are valid maps for Lemma 3.9");
        assert!(report.solved(), "{task}: {}", report.summary());
        assert_eq!(report.rounds, class.k, "{task}: time-optimal (Lemma 3.9)");
        assert!(
            member.cycle_roots().contains(&report.leader().unwrap()),
            "{task}: the leader is a cycle root (Lemma 3.10)"
        );
    }
    // The Theorem 2.2 advice pair solves Selection on the same member, with advice.
    let advice = Election::task(Task::Selection)
        .solver(AdviceSolver::theorem_2_2())
        .run(g)
        .unwrap();
    assert!(advice.solved());
    assert!(advice.advice_bits.unwrap() > 0);
    assert_eq!(advice.rounds, class.k, "ψ_S = k on U members");
}

/// All four shades through the engine on a `J_{2,4}` chain: the Lemma 4.8 CPPE
/// solver's outputs serve every weaker shade via the engine's automatic weakening —
/// Fact 1.1 end to end.
#[test]
fn all_four_shades_on_a_j_chain_via_the_engine() {
    let class = JClass::new(2, 4).unwrap();
    let member = class.template(Some(4)).unwrap();
    let g = member.labeled.graph.clone();
    let rho0 = member.rho(0);
    for task in Task::ALL {
        let report = Election::task(task)
            .solver(CppeSolver::new(class.template(Some(4)).unwrap(), class.k))
            .run(&g)
            .expect("the solver's member matches the graph");
        assert!(report.solved(), "{task}: {}", report.summary());
        assert_eq!(report.leader(), Some(rho0), "{task}: the leader is ρ_0");
        assert_eq!(report.rounds, class.k, "{task}: k rounds (Lemma 4.8)");
        // Outputs are stored in the requested shade.
        for out in &report.outputs {
            assert!(out.task().is_none_or(|t| t == task), "{task}");
        }
    }
}

/// Engine-equivalence property across backends: identical reports for identical
/// configurations on every family and on random graphs, for both solver kinds.
#[test]
fn every_backend_produces_identical_election_reports() {
    let graphs = vec![
        GClass::new(4, 1).unwrap().member(3).unwrap().labeled.graph,
        UClass::new(4, 1)
            .unwrap()
            .member(&[1u32; 9])
            .unwrap()
            .labeled
            .graph,
        JClass::new(2, 4)
            .unwrap()
            .template(Some(2))
            .unwrap()
            .labeled
            .graph,
        four_shades::graph::generators::random_connected(40, 5, 15, 9).unwrap(),
    ];
    for g in &graphs {
        if four_shades::views::election_index::psi_s(g).is_none() {
            continue; // infeasible graph: neither solver applies
        }
        for solver_kind in ["map", "advice"] {
            let make = |kind: &str| -> Box<dyn Solver> {
                match kind {
                    "map" => Box::new(MapSolver::default()),
                    _ => Box::new(AdviceSolver::theorem_2_2()),
                }
            };
            let task = Task::Selection;
            let seq = Election::task(task)
                .solver_boxed(make(solver_kind))
                .run(g)
                .expect("feasible graph");
            for backend in Backend::smoke_set() {
                let report = Election::task(task)
                    .solver_boxed(make(solver_kind))
                    .backend(backend)
                    .run(g)
                    .unwrap();
                assert_eq!(report.outputs, seq.outputs, "{solver_kind} on {backend}");
                assert_eq!(report.rounds, seq.rounds, "{solver_kind} on {backend}");
                assert_eq!(
                    report.messages_delivered, seq.messages_delivered,
                    "{solver_kind} on {backend}"
                );
                assert_eq!(report.leader(), seq.leader(), "{solver_kind} on {backend}");
            }
        }
    }
}

/// The batch runner sweeps a family × task matrix and the measured rounds respect
/// the paper's hierarchy (Fact 1.1) on every instance.
#[test]
fn batch_sweep_respects_the_hierarchy_on_g_members() {
    let class = GClass::new(4, 1).unwrap();
    let rows = BatchRunner::new(Backend::Parallel { threads: 2 })
        .max_instances(3)
        .sweep_tasks(&class, &Task::ALL, |_| Box::new(MapSolver::default()));
    assert_eq!(rows.len(), 4 * 3);
    for instance in 0..3 {
        let rounds: Vec<usize> = (0..4)
            .map(|t| rows[t * 3 + instance].rounds().expect("solved"))
            .collect();
        assert!(
            rounds.windows(2).all(|w| w[0] <= w[1]),
            "ψ_S ≤ ψ_PE ≤ ψ_PPE ≤ ψ_CPPE must hold, got {rounds:?}"
        );
    }
    for row in &rows {
        assert!(row.solved(), "{} {}", row.instance, row.task);
    }
}

/// The advice framework's backend-explicit entry point agrees with the facade (the
/// deprecated shims `anet_sim::run`, `anet_sim::run_parallel` and
/// `advice::run_with_advice` are gone; `run_with_advice_on` is the remaining low-level
/// way to run an oracle/algorithm pair outside the engine).
#[test]
fn advice_entry_point_agrees_with_the_engine() {
    let g = four_shades::graph::generators::star(5).unwrap();
    let low_level = four_shades::election::advice::run_with_advice_on(
        &g,
        &four_shades::election::selection::SelectionOracle::tree(),
        &four_shades::election::selection::SelectionAlgorithm::tree(),
        Backend::Sequential,
    );
    let new = Election::task(Task::Selection)
        .solver(AdviceSolver::theorem_2_2())
        .run(&g)
        .unwrap();
    assert_eq!(low_level.outputs, new.outputs);
    assert_eq!(low_level.rounds, new.rounds);
    assert_eq!(low_level.advice.len(), new.advice_bits.unwrap());
}
