//! Experiment E3 as a test: the structural ingredients of Theorem 2.9 on the fully
//! instantiated class `G_{4,1}` (all 9 members) and on single members of larger
//! parameters, including an explicit "fooling" run showing that reusing one member's
//! advice on another member elects two leaders.

use four_shades::constructions::GClass;
use four_shades::election::advice::{FnOracle, Oracle};
use four_shades::election::selection::{SelectionAlgorithm, SelectionOracle};
use four_shades::election::tasks::TaskError;
use four_shades::prelude::*;
use four_shades::views::{JointRefinement, Refinement};

#[test]
fn every_member_of_g_4_1_has_selection_index_k() {
    let class = GClass::new(4, 1).unwrap();
    for i in 1..=class.size().unwrap() {
        let m = class.member(i).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(2));
        assert!(
            r.unique_nodes_at(0).is_empty(),
            "G_{i}: no node may have a unique view at depth k−1 = 0"
        );
        assert!(
            r.unique_nodes_at(1).contains(&m.special_root()),
            "G_{i}: r_{{i,2}} must be unique at depth k = 1"
        );
    }
}

#[test]
fn lemma_2_6_unique_node_is_exactly_the_special_root_for_i_at_least_2() {
    let class = GClass::new(4, 1).unwrap();
    for i in 2..=class.size().unwrap() {
        let m = class.member(i).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(1));
        assert_eq!(
            r.unique_nodes_at(1),
            vec![m.special_root()],
            "G_{i}: exactly one unique view at depth k"
        );
    }
}

#[test]
fn lemma_2_8_roots_indistinguishable_across_members() {
    let class = GClass::new(4, 1).unwrap();
    let k = class.k;
    for (alpha, beta) in [(2u64, 3u64), (2, 7), (5, 9)] {
        let ga = class.member(alpha).unwrap();
        let gb = class.member(beta).unwrap();
        let joint = JointRefinement::compute(&[&ga.labeled.graph, &gb.labeled.graph], Some(k));
        for j in 1..=alpha {
            for b in [1u8, 2] {
                assert!(
                    joint.same_view(
                        (0, ga.root(j, b, 1).unwrap()),
                        (1, gb.root(j, b, 1).unwrap()),
                        k
                    ),
                    "α={alpha}, β={beta}, j={j}, b={b}"
                );
            }
        }
    }
}

#[test]
fn reusing_advice_across_members_elects_two_leaders_theorem_2_9_mechanism() {
    // The pigeonhole step of Theorem 2.9 made concrete: give G_β the advice computed
    // for G_α (α < β). The Theorem 2.2 algorithm then sees, in G_β, two copies of the
    // node whose view the advice encodes (the two copies of T_{α,2}), so it elects two
    // leaders and fails — exactly the contradiction of the proof.
    let class = GClass::new(4, 1).unwrap();
    let (alpha, beta) = (3u64, 6u64);
    let ga = class.member(alpha).unwrap();
    let gb = class.member(beta).unwrap();

    let advice_for_alpha = SelectionOracle::tree().advise(&ga.labeled.graph);
    let borrowed_oracle =
        FnOracle(move |_: &four_shades::graph::PortGraph| advice_for_alpha.clone());

    // On G_α the advice works.
    let on_alpha = Election::task(Task::Selection)
        .solver(AdviceSolver::theorem_2_2())
        .run(&ga.labeled.graph)
        .unwrap();
    assert!(on_alpha.solved(), "solves G_α");

    // On G_β the borrowed advice elects both copies of r_{α,2}.
    let on_beta = Election::task(Task::Selection)
        .solver(AdviceSolver::new(
            "borrowed-advice",
            borrowed_oracle,
            SelectionAlgorithm::tree(),
        ))
        .run(&gb.labeled.graph)
        .unwrap();
    match on_beta.verdict {
        Err(TaskError::MultipleLeaders { leaders }) => {
            let expected = [gb.root(alpha, 2, 1).unwrap(), gb.root(alpha, 2, 2).unwrap()];
            for l in &leaders {
                assert!(expected.contains(l), "unexpected leader {l}");
            }
            assert_eq!(leaders.len(), 2);
        }
        other => panic!("expected exactly the two-copies failure, got {other:?}"),
    }
}

#[test]
fn larger_parameters_single_members_have_index_k() {
    for (delta, k, i) in [(5usize, 1usize, 11u64), (6, 1, 30), (4, 2, 5)] {
        let class = GClass::new(delta, k).unwrap();
        let m = class.member(i).unwrap();
        let r = Refinement::compute(&m.labeled.graph, Some(k));
        for h in 0..k {
            assert!(
                r.unique_nodes_at(h).is_empty(),
                "Δ={delta}, k={k}, depth {h}"
            );
        }
        assert!(r.unique_nodes_at(k).contains(&m.special_root()));
    }
}
