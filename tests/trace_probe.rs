//! Workspace-level acceptance of the tracing layer: the probe sees the same
//! per-round message stream on every execution backend, the stream reconciles
//! exactly with the report-level accounting, and a recorded stream survives the
//! round trip through the versioned `anet-trace/v1` artifact.

use four_shades::constructions::{GClass, UClass};
use four_shades::graph::generators;
use four_shades::graph::PortGraph;
use four_shades::prelude::*;
use four_shades::trace::{Recorder, RoundProfile, Tagged, TraceEvent};
use four_shades::workloads::{chrome_trace_json, parse_trace, TraceFile};
use std::sync::Arc;

/// Graphs from distinct families, all feasible for the map-based solver. The
/// paper line and the star solve from degrees alone (zero rounds — a valid,
/// empty profile); the class members actually communicate.
fn probe_graphs() -> Vec<(String, PortGraph)> {
    vec![
        (
            "G(4,1)-member".to_string(),
            GClass::new(4, 1).unwrap().member(4).unwrap().labeled.graph,
        ),
        (
            "U(4,1)-member".to_string(),
            UClass::new(4, 1)
                .unwrap()
                .member(&[2u32; 9])
                .unwrap()
                .labeled
                .graph,
        ),
        (
            "paper-line".to_string(),
            generators::paper_three_node_line(),
        ),
        ("star-6".to_string(), generators::star(6).unwrap()),
    ]
}

/// The per-round message/payload sequence is a property of the algorithm, not of
/// the execution backend: every backend in the smoke set reports the identical
/// sequence, and its sum is exactly the report's `messages_delivered`.
#[test]
fn per_round_counts_are_identical_across_every_smoke_backend() {
    let mut saw_rounds = false;
    for (name, graph) in probe_graphs() {
        let reference = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .profiled()
            .run(&graph)
            .expect("probe graphs are feasible")
            .round_profile
            .expect("profiled run attaches a profile");
        saw_rounds |= !reference.is_empty();
        for backend in Backend::smoke_set() {
            let report = Election::task(Task::Selection)
                .solver(MapSolver::default())
                .backend(backend)
                .profiled()
                .run(&graph)
                .unwrap();
            let profile = report.round_profile.as_ref().unwrap();
            // Timings differ run to run; the counted stream must not.
            let counts: Vec<(u64, u64, u64)> = profile
                .rounds()
                .iter()
                .map(|s| (s.round, s.messages, s.payload_bytes))
                .collect();
            let expected: Vec<(u64, u64, u64)> = reference
                .rounds()
                .iter()
                .map(|s| (s.round, s.messages, s.payload_bytes))
                .collect();
            assert_eq!(counts, expected, "{name} on {backend}");
            assert_eq!(
                profile.total_messages() as usize,
                report.messages_delivered,
                "{name} on {backend}: per-round sums reconcile with the report"
            );
            assert_eq!(profile.len(), report.rounds, "{name} on {backend}");
        }
    }
    assert!(saw_rounds, "at least one probe graph actually communicated");
}

/// The advice solvers run through the same probe seam: a Theorem 2.2 run on a
/// `U_{4,1}` member profiles every round too, on every backend.
#[test]
fn advice_solver_rounds_reconcile_on_every_backend() {
    let class = UClass::new(4, 1).unwrap();
    let graph = class.member(&[2u32; 9]).unwrap().labeled.graph;
    for backend in Backend::smoke_set() {
        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .backend(backend)
            .profiled()
            .run(&graph)
            .unwrap();
        let profile = report.round_profile.as_ref().unwrap();
        assert_eq!(profile.total_messages() as usize, report.messages_delivered);
        assert_eq!(profile.len(), report.rounds, "ψ_S rounds, all profiled");
    }
}

/// Recorded streams survive the artifact: tag two runs with distinct ids through
/// one shared recorder, serialise them as `anet-trace/v1`, parse the text back,
/// and recover each run's profile exactly. The chrome export of the same file is
/// a well-formed trace-event document.
#[test]
fn recorded_streams_round_trip_through_the_versioned_artifact() {
    let recorder = Arc::new(Recorder::new());
    let mut reports = Vec::new();
    for (id, (_, graph)) in probe_graphs().into_iter().take(2).enumerate() {
        let report = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .trace_sink(Arc::new(Tagged::new(recorder.clone(), id as u64)))
            .run(&graph)
            .unwrap();
        reports.push(report);
    }
    let events = recorder.drain();

    let mut file = TraceFile::new("probe");
    for id in 0..reports.len() {
        let run_events: Vec<TraceEvent> = events
            .iter()
            .copied()
            .filter(|e| e.trace_id() == id as u64)
            .collect();
        assert!(!run_events.is_empty(), "tagging kept the streams apart");
        file.push_run(id as u64, format!("probe-{id}"), run_events);
    }

    let parsed = parse_trace(&file.render()).expect("the artifact parses back");
    assert_eq!(parsed, file, "lossless text round trip");
    for (id, report) in reports.iter().enumerate() {
        let run = &parsed.runs[id];
        let profile = RoundProfile::for_trace(&run.events, id as u64);
        assert_eq!(
            profile.total_messages() as usize,
            report.messages_delivered,
            "run {id}: parsed-back rounds reconcile with the live report"
        );
    }

    let chrome = chrome_trace_json(&parsed);
    let rendered = chrome.render_pretty();
    assert!(rendered.contains("\"traceEvents\""));
    assert!(rendered.contains("\"displayTimeUnit\""));
    // One slice per phase per round plus per-run metadata: never empty here.
    assert!(rendered.contains("\"ph\": \"X\""));
}
