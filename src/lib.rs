//! # four-shades — umbrella crate
//!
//! Reproduction of *"Four Shades of Deterministic Leader Election in Anonymous
//! Networks"* (Gorain, Miller, Pelc — SPAA 2021). This crate re-exports the public API
//! of the workspace so that examples and downstream users can depend on a single crate:
//!
//! * [`graph`] — anonymous port-numbered network graphs,
//! * [`views`] — augmented truncated views, refinement, election indices,
//! * [`sim`] — the synchronous LOCAL-model simulator,
//! * [`election`] — the four election tasks, advice framework and algorithms,
//! * [`constructions`] — the paper's lower-bound graph families and figures.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for the mapping
//! between the paper's results and the code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anet_constructions as constructions;
pub use anet_election as election;
pub use anet_graph as graph;
pub use anet_sim as sim;
pub use anet_views as views;
