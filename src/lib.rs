//! # four-shades — umbrella crate
//!
//! Reproduction of *"Four Shades of Deterministic Leader Election in Anonymous
//! Networks"* (Gorain, Miller, Pelc — SPAA 2021). This crate re-exports the public API
//! of the workspace so that examples and downstream users can depend on a single crate:
//!
//! * [`graph`] — anonymous port-numbered network graphs,
//! * [`views`] — augmented truncated views, refinement, election indices,
//! * [`sim`] — the synchronous LOCAL-model simulator and its execution backends,
//! * [`trace`] — the round-level tracing layer: typed [`trace::TraceEvent`]s, the
//!   [`trace::TraceSink`] trait with its zero-cost [`trace::NoopSink`] and striped
//!   [`trace::Recorder`], and the [`trace::RoundProfile`] per-round aggregate
//!   (see `docs/OBSERVABILITY.md`),
//! * [`election`] — the four election tasks, advice framework, algorithms, and the
//!   **`ElectionEngine` facade** (`Election::task(…).solver(…).backend(…).run(&g)`),
//! * [`constructions`] — the paper's lower-bound graph families and figures,
//! * [`workloads`] — scenario generation beyond the paper: extra graph families
//!   (random-regular, torus, hypercube, circulant), the scenario registry, and the
//!   JSON-emitting sweep driver behind the `sweep` binary,
//! * [`service`] — the multi-tenant election service: a work-stealing scheduler
//!   with bounded-queue backpressure running many election requests concurrently
//!   over one shared concurrent view interner, with latency/throughput metrics.
//!
//! The most common names are re-exported in the [`prelude`]:
//!
//! ```no_run
//! use four_shades::prelude::*;
//! # let graph = four_shades::graph::generators::paper_three_node_line();
//! let report = Election::task(Task::Selection)
//!     .solver(MapSolver::default())
//!     .backend(Backend::Parallel { threads: 4 })
//!     .run(&graph)
//!     .expect("solvable graph");
//! println!("{}", report.summary());
//! ```
//!
//! See `README.md` for a quickstart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anet_constructions as constructions;
pub use anet_election as election;
pub use anet_graph as graph;
pub use anet_service as service;
pub use anet_sim as sim;
pub use anet_trace as trace;
pub use anet_views as views;
pub use anet_workloads as workloads;

/// The names needed for everyday use of the `ElectionEngine` facade.
pub mod prelude {
    pub use anet_constructions::{FamilyInstance, GraphFamily};
    pub use anet_election::engine::{
        AdviceSolver, Backend, BatchRow, BatchRunner, CppeSolver, Election, ElectionBuilder,
        ElectionReport, EngineError, MapSolver, PortElectionSolver, RunContext, Solver, SolverRun,
    };
    pub use anet_election::tasks::{ElectionOutcome, NodeOutput, Task, TaskError};
    pub use anet_service::{
        CompletedElection, ElectionRequest, ElectionService, ServiceConfig, ServiceReport,
        SolverRecipe, Submission, TenantBreakdown,
    };
    pub use anet_trace::{NoopSink, Recorder, RoundProfile, TraceEvent, TraceSink};
    pub use anet_workloads::{Scenario, ScenarioRegistry, SolverSpec};
}
